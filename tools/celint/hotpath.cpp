// tools/celint/hotpath.cpp
//
// Pass 2, hot-path allocation gate: pass 1 already resolved the
// `// celint: hot-path begin -- <why>` ... `end` regions and recorded the
// allocation/growth constructs inside them (hot_hits) plus any marker
// grammar errors (meta bad-region findings). This pass just renders them:
// hits become hotpath-alloc findings unless a justified allow covers the
// line; bad-region findings are meta and non-suppressible, mirroring
// bad-suppression. The gate turns PR 4's and PR 7's zero-alloc/no-realloc
// steady-state invariants — previously Debug-only asserts — into a static
// check that runs on every lint.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "celint.hpp"
#include "flow.hpp"

namespace celint::flow {

namespace {

bool suppressed(const FileFacts& f, int line, const std::string& rule) {
  const auto it = f.allowed.find(line);
  return it != f.allowed.end() && it->second.count(rule) != 0;
}

}  // namespace

std::vector<Finding> hotpath_findings(const std::vector<FileFacts>& all) {
  std::vector<Finding> out;
  for (const auto& f : all) {
    for (const auto& m : f.meta) {
      Finding g = m;
      g.file = f.path;
      out.push_back(std::move(g));
    }
    for (const auto& h : f.hot_hits) {
      if (suppressed(f, h.line, "hotpath-alloc")) continue;
      out.push_back(
          {f.path, h.line, "hotpath-alloc",
           h.what +
               " inside a hot-path region: steady-state paths must not "
               "allocate (preallocate in setup, or suppress with a "
               "justified allow if this growth is deliberate and "
               "amortized)"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace celint::flow
