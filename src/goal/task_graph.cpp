#include "goal/task_graph.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

namespace celog::goal {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kCalc: return "calc";
    case OpKind::kSend: return "send";
    case OpKind::kRecv: return "recv";
  }
  return "?";
}

TaskGraph::TaskGraph(Rank ranks) {
  CELOG_ASSERT_MSG(ranks > 0, "task graph needs at least one rank");
  programs_.resize(static_cast<std::size_t>(ranks));
}

OpId TaskGraph::add_op(Rank rank, const Op& op) {
  CELOG_ASSERT_MSG(!finalized_, "cannot add ops after finalize()");
  CELOG_ASSERT(rank >= 0 && rank < ranks());
  if (op.kind != OpKind::kCalc) {
    CELOG_ASSERT_MSG(op.peer >= 0 && op.peer < ranks(),
                     "send/recv peer out of range");
    CELOG_ASSERT_MSG(op.peer != rank, "self-messages are not supported");
  }
  auto& prog = programs_[static_cast<std::size_t>(rank)];
  const auto index = static_cast<OpIndex>(prog.ops_.size());
  prog.ops_.push_back(op);
  return OpId{rank, index};
}

void TaskGraph::add_dependency(OpId before, OpId after) {
  CELOG_ASSERT_MSG(!finalized_, "cannot add edges after finalize()");
  CELOG_ASSERT_MSG(before.rank == after.rank,
                   "dependency edges must stay within one rank");
  CELOG_ASSERT(before.rank >= 0 && before.rank < ranks());
  const auto& prog = programs_[static_cast<std::size_t>(before.rank)];
  CELOG_ASSERT(before.index < prog.ops_.size());
  CELOG_ASSERT(after.index < prog.ops_.size());
  CELOG_ASSERT_MSG(before.index != after.index, "op cannot depend on itself");
  edges_.push_back(Edge{before.rank, before.index, after.index});
}

void TaskGraph::finalize() {
  CELOG_ASSERT_MSG(!finalized_, "finalize() called twice");

  // Group edges by rank, then build CSR per rank.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.before != b.before) return a.before < b.before;
    return a.after < b.after;
  });
  // Drop exact duplicate edges so in-degrees stay correct if a generator
  // declares the same dependency twice.
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.rank == b.rank && a.before == b.before &&
                                    a.after == b.after;
                           }),
               edges_.end());

  std::size_t edge_pos = 0;
  for (Rank r = 0; r < ranks(); ++r) {
    auto& prog = programs_[static_cast<std::size_t>(r)];
    const std::size_t n = prog.ops_.size();
    prog.succ_offsets_.assign(n + 1, 0);
    prog.in_degree_.assign(n, 0);

    const std::size_t rank_begin = edge_pos;
    while (edge_pos < edges_.size() && edges_[edge_pos].rank == r) {
      const Edge& e = edges_[edge_pos];
      ++prog.succ_offsets_[e.before + 1];
      ++prog.in_degree_[e.after];
      ++edge_pos;
    }
    std::partial_sum(prog.succ_offsets_.begin(), prog.succ_offsets_.end(),
                     prog.succ_offsets_.begin());
    prog.succ_.resize(edge_pos - rank_begin);
    std::vector<std::size_t> cursor(prog.succ_offsets_.begin(),
                                    prog.succ_offsets_.end() - 1);
    for (std::size_t i = rank_begin; i < edge_pos; ++i) {
      prog.succ_[cursor[edges_[i].before]++] = edges_[i].after;
    }

    // Kahn's algorithm: a cycle exists iff some op is never released.
    std::vector<std::uint32_t> indeg = prog.in_degree_;
    std::deque<OpIndex> ready;
    for (OpIndex i = 0; i < n; ++i) {
      if (indeg[i] == 0) ready.push_back(i);
    }
    std::size_t released = 0;
    while (!ready.empty()) {
      const OpIndex i = ready.front();
      ready.pop_front();
      ++released;
      for (std::size_t s = prog.succ_offsets_[i]; s < prog.succ_offsets_[i + 1];
           ++s) {
        if (--indeg[prog.succ_[s]] == 0) ready.push_back(prog.succ_[s]);
      }
    }
    if (released != n) {
      throw InvalidInputError("dependency cycle in program of rank " +
                              std::to_string(r));
    }
  }
  finalized_ = true;
}

std::size_t TaskGraph::total_ops() const {
  std::size_t total = 0;
  for (const auto& prog : programs_) total += prog.ops_.size();
  return total;
}

std::int64_t TaskGraph::total_bytes_sent() const {
  std::int64_t total = 0;
  for (const auto& prog : programs_) {
    for (const auto& op : prog.ops_) {
      if (op.kind == OpKind::kSend) total += op.size_or_duration;
    }
  }
  return total;
}

std::size_t TaskGraph::count_ops(OpKind kind) const {
  std::size_t total = 0;
  for (const auto& prog : programs_) {
    for (const auto& op : prog.ops_) {
      if (op.kind == kind) ++total;
    }
  }
  return total;
}

SequentialBuilder::SequentialBuilder(TaskGraph& graph, Rank rank)
    : graph_(graph), rank_(rank) {
  CELOG_ASSERT(rank >= 0 && rank < graph.ranks());
}

OpId SequentialBuilder::append(const Op& op) {
  const OpId id = graph_.add_op(rank_, op);
  for (const OpId& dep : frontier_) graph_.add_dependency(dep, id);
  if (in_phase_) {
    phase_ops_.push_back(id);
  } else {
    frontier_.clear();
    frontier_.push_back(id);
  }
  return id;
}

OpId SequentialBuilder::calc(TimeNs duration) {
  return append(Op::calc(duration));
}

OpId SequentialBuilder::send(Rank dest, std::int64_t bytes, Tag tag) {
  return append(Op::send(dest, bytes, tag));
}

OpId SequentialBuilder::recv(Rank src, std::int64_t bytes, Tag tag) {
  return append(Op::recv(src, bytes, tag));
}

OpId SequentialBuilder::detached_send(Rank dest, std::int64_t bytes,
                                      Tag tag) {
  CELOG_ASSERT_MSG(!in_phase_, "detached ops are not allowed inside a phase");
  const OpId id = graph_.add_op(rank_, Op::send(dest, bytes, tag));
  for (const OpId& dep : frontier_) graph_.add_dependency(dep, id);
  return id;
}

OpId SequentialBuilder::detached_recv(Rank src, std::int64_t bytes, Tag tag) {
  CELOG_ASSERT_MSG(!in_phase_, "detached ops are not allowed inside a phase");
  const OpId id = graph_.add_op(rank_, Op::recv(src, bytes, tag));
  for (const OpId& dep : frontier_) graph_.add_dependency(dep, id);
  return id;
}

void SequentialBuilder::join(OpId id) {
  CELOG_ASSERT_MSG(!in_phase_, "join() is not allowed inside a phase");
  CELOG_ASSERT_MSG(id.rank == rank_, "can only join ops of this rank");
  frontier_.push_back(id);
}

void SequentialBuilder::begin_phase() {
  CELOG_ASSERT_MSG(!in_phase_, "begin_phase() while already in a phase");
  in_phase_ = true;
  phase_ops_.clear();
}

void SequentialBuilder::end_phase() {
  CELOG_ASSERT_MSG(in_phase_, "end_phase() without begin_phase()");
  in_phase_ = false;
  if (!phase_ops_.empty()) {
    // Everything after the phase depends on all ops inside it (waitall);
    // an empty phase leaves the frontier unchanged.
    frontier_ = std::move(phase_ops_);
    phase_ops_ = {};
  }
}

}  // namespace celog::goal
