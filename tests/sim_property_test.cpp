// Property-based tests of the engine: determinism, monotonicity under noise,
// and deadlock-freedom on randomly generated (but valid) communication
// graphs, swept over rank counts and seeds with parameterized gtest.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "goal/task_graph.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace celog::sim {
namespace {

using goal::Rank;
using goal::SequentialBuilder;
using goal::TaskGraph;

/// Builds a random-but-valid graph: `iters` rounds; in each round every
/// rank computes a random duration, then exchanges a random-size message
/// with a deterministic partner (pairwise, so every send has its recv).
TaskGraph random_graph(Rank ranks, int iters, std::uint64_t seed) {
  TaskGraph g(ranks);
  Xoshiro256 rng(seed);
  std::vector<SequentialBuilder> builders;
  builders.reserve(static_cast<std::size_t>(ranks));
  for (Rank r = 0; r < ranks; ++r) builders.emplace_back(g, r);

  for (int it = 0; it < iters; ++it) {
    // Random per-rank compute.
    for (Rank r = 0; r < ranks; ++r) {
      builders[static_cast<std::size_t>(r)].calc(
          static_cast<TimeNs>(rng.uniform_below(100000)));
    }
    // Pair ranks by a random odd shift so (r, partner) is a bijection of
    // pairs: partner(partner(r)) == r when ranks is even.
    const Rank shift =
        static_cast<Rank>(rng.uniform_below(
            static_cast<std::uint64_t>(ranks / 2)) * 2 + 1);
    const auto bytes =
        static_cast<std::int64_t>(rng.uniform_below(20000));
    for (Rank r = 0; r < ranks; ++r) {
      // Pair i <-> i+shift within blocks of 2*shift... simpler: pair by XOR
      // trick only valid for power-of-two shifts; use ring exchange both
      // directions instead, which is always matched.
      auto& b = builders[static_cast<std::size_t>(r)];
      b.begin_phase();
      b.send((r + shift) % ranks, bytes, it);
      b.recv((r - shift % ranks + ranks) % ranks, bytes, it);
      b.end_phase();
    }
  }
  g.finalize();
  return g;
}

class RandomGraphTest
    : public ::testing::TestWithParam<std::tuple<Rank, std::uint64_t>> {};

TEST_P(RandomGraphTest, CompletesWithoutDeadlock) {
  const auto [ranks, seed] = GetParam();
  const TaskGraph g = random_graph(ranks, 5, seed);
  Simulator sim(g, NetworkParams::cray_xc40());
  const SimResult r = sim.run_baseline();
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(r.rank_finish.size(), static_cast<std::size_t>(ranks));
}

TEST_P(RandomGraphTest, BaselineIsDeterministic) {
  const auto [ranks, seed] = GetParam();
  const TaskGraph g = random_graph(ranks, 5, seed);
  Simulator sim(g, NetworkParams::cray_xc40());
  const SimResult a = sim.run_baseline();
  const SimResult b = sim.run_baseline();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST_P(RandomGraphTest, NoisyRunIsDeterministicPerSeed) {
  const auto [ranks, seed] = GetParam();
  const TaskGraph g = random_graph(ranks, 5, seed);
  Simulator sim(g, NetworkParams::cray_xc40());
  const noise::UniformCeNoiseModel noise(
      milliseconds(1),
      std::make_shared<noise::FlatLoggingCost>(microseconds(20)));
  const SimResult a = sim.run(noise, 77);
  const SimResult b = sim.run(noise, 77);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.noise_stolen, b.noise_stolen);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
  // (Cross-seed stream divergence is asserted in noise_model_test; totals
  // of two different seeds can legitimately collide here.)
}

TEST_P(RandomGraphTest, NoiseDoesNotMeaningfullySpeedUp) {
  // Noise is pure added delay, BUT it can reorder NIC arbitration between
  // independent sends, and schedule perturbations can legitimately let an
  // individual rank — in pathological cases even the makespan — finish
  // slightly earlier (Graham's scheduling anomalies). The sound property is
  // therefore "no meaningful speedup": the noisy makespan may undercut the
  // baseline by at most one message's worth of slack.
  const auto [ranks, seed] = GetParam();
  const TaskGraph g = random_graph(ranks, 5, seed);
  Simulator sim(g, NetworkParams::cray_xc40());
  const SimResult base = sim.run_baseline();
  const noise::UniformCeNoiseModel noise(
      milliseconds(1),
      std::make_shared<noise::FlatLoggingCost>(microseconds(20)));
  const auto tolerance =
      static_cast<TimeNs>(static_cast<double>(base.makespan) * 0.02);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const SimResult noisy = sim.run(noise, s);
    EXPECT_GE(noisy.makespan + tolerance, base.makespan) << "seed " << s;
  }
}

TEST_P(RandomGraphTest, MoreNoiseMoreSlowdown) {
  // Doubling the CE rate (halving MTBCE) cannot reduce total stolen time in
  // expectation; check it monotonically increases over a 4-point sweep on
  // the run mean of 3 seeds.
  const auto [ranks, seed] = GetParam();
  const TaskGraph g = random_graph(ranks, 5, seed);
  Simulator sim(g, NetworkParams::cray_xc40());
  // Utilization (cost / MTBCE) stays well below 1 so the busy-period
  // arithmetic converges; rates differ 8x per step so the ordering is
  // statistically robust with 5 seeds.
  double prev_mean = -1.0;
  for (const TimeNs mtbce :
       {milliseconds(1), microseconds(125), microseconds(16)}) {
    const noise::UniformCeNoiseModel noise(
        mtbce, std::make_shared<noise::FlatLoggingCost>(microseconds(2)));
    double sum = 0.0;
    for (std::uint64_t s = 1; s <= 5; ++s) {
      sum += static_cast<double>(sim.run(noise, s).makespan);
    }
    EXPECT_GT(sum / 5.0, prev_mean) << "mtbce " << mtbce;
    prev_mean = sum / 5.0;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphTest,
    ::testing::Combine(::testing::Values<Rank>(2, 3, 8, 17, 32),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(SimInvariants, EventsProcessedScalesWithOps) {
  const TaskGraph small = random_graph(8, 2, 1);
  const TaskGraph big = random_graph(8, 20, 1);
  Simulator sim_small(small, NetworkParams::cray_xc40());
  Simulator sim_big(big, NetworkParams::cray_xc40());
  EXPECT_GT(sim_big.run_baseline().events_processed,
            sim_small.run_baseline().events_processed);
}

TEST(SimInvariants, DataMessagesMatchSendCount) {
  const TaskGraph g = random_graph(16, 4, 9);
  Simulator sim(g, NetworkParams::cray_xc40());
  EXPECT_EQ(sim.run_baseline().data_messages,
            g.count_ops(goal::OpKind::kSend));
}

}  // namespace
}  // namespace celog::sim
