#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace celog {

Cli::Cli(std::string program_summary) : summary_(std::move(program_summary)) {}

void Cli::add_option(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  CELOG_ASSERT_MSG(!options_.contains(name), "duplicate option");
  options_[name] = Option{default_value, help, /*is_flag=*/false};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  CELOG_ASSERT_MSG(!options_.contains(name), "duplicate option");
  options_[name] = Option{"", help, /*is_flag=*/true};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  values_.clear();
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      if (!quiet_) std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      if (!quiet_) std::fputs(usage().c_str(), stderr);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      error_ = "unknown option: --" + arg;
      if (!quiet_) std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + arg + " does not take a value";
        return false;
      }
      values_[arg] = std::string("1");
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          error_ = "option --" + arg + " requires a value";
          return false;
        }
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto opt = options_.find(name);
  CELOG_ASSERT_MSG(opt != options_.end(), "get() of unregistered option");
  auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->second.default_value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw ParseError("option --" + name + ": not an integer: " + v);
  }
  if (errno == ERANGE) {
    throw ParseError("option --" + name + ": integer out of range: " + v);
  }
  return parsed;
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw ParseError("option --" + name + ": not a number: " + v);
  }
  // strtod accepts "inf"/"nan" spellings and silently saturates overflowing
  // literals to +-HUGE_VAL (with ERANGE). None of those is a usable knob
  // value — every numeric option here is a finite quantity (seconds, rates,
  // counts) — and celogd parses this same grammar from untrusted clients,
  // so non-finite input is rejected as a parse error, not passed through.
  if (!std::isfinite(parsed)) {
    throw ParseError("option --" + name + ": not a finite number: " + v);
  }
  return parsed;
}

bool Cli::provided(const std::string& name) const {
  CELOG_ASSERT_MSG(options_.contains(name), "provided() of unregistered option");
  return values_.contains(name);
}

bool Cli::get_flag(const std::string& name) const {
  auto opt = options_.find(name);
  CELOG_ASSERT_MSG(opt != options_.end() && opt->second.is_flag,
                   "get_flag() of unregistered flag");
  return values_.contains(name);
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << summary_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    out << "  --" << name;
    if (!o.is_flag) out << " <value> (default: " << o.default_value << ")";
    out << "\n      " << o.help << '\n';
  }
  out << "  --help\n      print this message\n";
  return out.str();
}

}  // namespace celog
