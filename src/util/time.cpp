#include "util/time.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace celog {

std::string format_duration(TimeNs t) {
  char buf[64];
  const bool neg = t < 0;
  const TimeNs a = neg ? -t : t;
  const char* sign = neg ? "-" : "";
  if (a < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 " ns", sign, a);
  } else if (a < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f us", sign,
                  static_cast<double>(a) / static_cast<double>(kMicrosecond));
  } else if (a < kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f ms", sign,
                  static_cast<double>(a) / static_cast<double>(kMillisecond));
  } else if (a < kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%.3f s", sign,
                  static_cast<double>(a) / static_cast<double>(kSecond));
  } else if (a < kHour) {
    std::snprintf(buf, sizeof(buf), "%s%.2f min", sign,
                  static_cast<double>(a) / static_cast<double>(kMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2f h", sign,
                  static_cast<double>(a) / static_cast<double>(kHour));
  }
  return buf;
}

}  // namespace celog
