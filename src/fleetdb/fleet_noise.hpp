// celog/fleetdb/fleet_noise.hpp
//
// The fleet-persistent CE stream: fault rows that survive across epochs,
// page offlining that actually silences a row, and module replacement
// that re-rolls where a DIMM fails.
//
// telemetry's CeDecoder derives each rank's fault rows from the RUN seed,
// so every run fails on fresh rows — right for the paper's single-run
// ablations, wrong for a fleet: maintenance only makes sense when the same
// physical rows keep erring across epochs. Here the table is derived from
// (campaign_seed, node, slot, dimm generation):
//
//   * dimm/channel of a slot depend only on (campaign_seed, node, slot) —
//     the slot stays on its DIMM for the campaign's lifetime;
//   * bank/row additionally mix in the CURRENT generation of that DIMM
//     (MemDb::generation), so replacing a module re-rolls exactly the
//     fault rows living on it and nothing else.
//
// Offlining is modeled at the SOURCE: an offlined page is unmapped, the
// row is never accessed again, so its events produce NO detours (unlike
// telemetry's in-run kRetired, which still charges the 150 ns hardware
// correction). FleetNodeStream implements noise::EventFilter to swallow
// those events while still counting them — the suppressed count is the
// UE-risk a policy's offline action bought.
//
// Determinism: the collector does not mirror the source with lookalike
// logic — it holds, per rank, an exact REPLICA of the live source (same
// classes, same seed, same immutable epoch state) and advances it one
// pop() per observed detour, cross-checking arrival and duration. The two
// cannot diverge because they are the same code.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fleetdb/memdb.hpp"
#include "noise/detour.hpp"
#include "noise/noise_model.hpp"
#include "noise/rank_noise.hpp"
#include "telemetry/ce_record.hpp"
#include "telemetry/leaky_bucket.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace celog::fleetdb {

/// Everything the fleet CE stream needs, shared verbatim by the in-run
/// sources, the observing collector, and the epoch-state derivation.
struct FleetNoiseConfig {
  /// Per-node mean time between CEs. Campaigns run ACCELERATED aging: a
  /// multi-second run stands for a whole epoch of fleet time, with the
  /// MTBCE compressed by the same factor — the paper's rate-preserving
  /// reduction applied to time instead of node count.
  TimeNs mtbce = 10 * kMillisecond;
  telemetry::DimmGeometry geometry;
  /// Fault rows per node (constant across generations; replacement moves
  /// them, it does not heal the node's propensity to fail).
  std::uint32_t fault_rows = 4;
  /// Per-DIMM storm trigger, as in telemetry::AccountingConfig.
  telemetry::BucketConf bucket{50, kSecond};
  /// Per-CE costs by action. No page-offline cost appears here: fleet
  /// offlining happens BETWEEN epochs by policy, never inside a run.
  TimeNs logged_cost = noise::costs::kMeasuredCmci;
  TimeNs storm_decode_cost = 10 * kMillisecond;
  TimeNs rate_limited_cost = noise::costs::kHardwareOnly;

  bool operator==(const FleetNoiseConfig&) const = default;
};

/// Immutable snapshot of the fleet's physical state for ONE epoch: every
/// node's fault-row table (generation-resolved addresses) and which of
/// those rows are offlined. Built between epochs from the MemDb; shared by
/// the noise model's sources and the collector's replicas via shared_ptr.
class FleetEpochState {
 public:
  struct Slot {
    telemetry::DimmAddress addr;
    bool offlined = false;
  };

  /// Derives the table for `nodes` ranks from (config, campaign_seed) and
  /// the DB's generations/offline records. Pure function of its inputs:
  /// checkpoint/resume rebuilds the identical state from the DB alone.
  static std::shared_ptr<const FleetEpochState> build(
      const FleetNoiseConfig& config, std::uint64_t campaign_seed,
      std::int32_t nodes, const MemDb& db);

  std::int32_t nodes() const { return nodes_; }
  std::uint32_t fault_rows() const { return fault_rows_; }

  const Slot& slot(std::int32_t node, std::uint32_t s) const {
    return slots_[static_cast<std::size_t>(node) * fault_rows_ + s];
  }

  /// True when EVERY fault row of `node` is offlined: no mapped faulty
  /// page remains, so the node generates no machine checks at all. The
  /// sources must special-case this — a filter that never admits would
  /// otherwise spin PoissonDetourSource::advance() forever.
  bool node_dead(std::int32_t node) const {
    for (std::uint32_t s = 0; s < fault_rows_; ++s) {
      if (!slot(node, s).offlined) return false;
    }
    return true;
  }

 private:
  std::int32_t nodes_ = 0;
  std::uint32_t fault_rows_ = 0;
  std::vector<Slot> slots_;  ///< node * fault_rows + slot
};

/// One rank's CE stream logic for one run: event-to-slot decode, offline
/// suppression (noise::EventFilter) and per-action cost charging with
/// mcelog bucket storms (noise::LoggingCostModel), plus the per-slot /
/// per-DIMM tallies a collector folds into a MemDb shard.
///
/// The filter sees PHYSICAL event indices (every generated event) and the
/// cost model sees EMITTED indices (admitted events only); the slot
/// decoded at admission is handed to the cost path through pending_slot_,
/// which is safe because PoissonDetourSource calls admit() and
/// cost_of_event_at() strictly alternately on one thread.
class FleetNodeStream final : public noise::EventFilter,
                              public noise::LoggingCostModel {
 public:
  FleetNodeStream(const FleetNoiseConfig& config,
                  std::shared_ptr<const FleetEpochState> state,
                  std::int32_t rank, std::uint64_t run_seed);

  /// Rearms for a new (run_seed) on the same (state, rank), reusing
  /// storage — the reseed seam's path.
  void reseed(std::uint64_t run_seed);

  // EventFilter: decodes the event's slot; swallows offlined rows.
  bool admit(std::uint64_t physical_index, TimeNs arrival) override;

  // LoggingCostModel: charges the admitted event via the storm automaton.
  TimeNs cost_of_event(std::uint64_t) const override {
    return config_.logged_cost;
  }
  TimeNs cost_of_event_at(std::uint64_t event_index,
                          TimeNs arrival) const override;
  double mean_cost_ns() const override;

  // Tallies (all integer, read by FleetCollector::fold_into).
  std::uint64_t slot_ces(std::uint32_t s) const { return slots_[s].ces; }
  std::uint64_t slot_suppressed(std::uint32_t s) const {
    return slots_[s].suppressed;
  }
  TimeNs slot_first(std::uint32_t s) const { return slots_[s].first; }
  TimeNs slot_last(std::uint32_t s) const { return slots_[s].last; }
  std::uint64_t dimm_trips(std::uint32_t d) const { return dimms_[d].trips; }

  std::int32_t rank() const { return rank_; }
  const FleetEpochState& state() const { return *state_; }
  const FleetNoiseConfig& config() const { return config_; }

 private:
  struct SlotTally {
    std::uint64_t ces = 0;
    std::uint64_t suppressed = 0;
    TimeNs first = 0;
    TimeNs last = 0;
  };
  struct DimmTally {
    telemetry::LeakyBucket bucket;
    TimeNs storm_until = 0;
    std::uint64_t trips = 0;
  };

  std::uint32_t slot_of(std::uint64_t physical_index) const {
    SplitMix64 h(slot_seed_ ^ (physical_index * 0x9e3779b97f4a7c15ULL));
    return static_cast<std::uint32_t>(h.next() % config_.fault_rows);
  }

  FleetNoiseConfig config_;
  std::shared_ptr<const FleetEpochState> state_;
  std::int32_t rank_ = 0;
  std::uint64_t slot_seed_ = 0;
  // Mutable: LoggingCostModel's charging entry point is const (the same
  // idiom as telemetry::AdaptiveLoggingPolicy); a stream is per-rank
  // per-run state, never shared across threads.
  mutable std::vector<SlotTally> slots_;
  mutable std::vector<DimmTally> dimms_;
  mutable std::uint32_t pending_slot_ = 0;
  mutable TimeNs charged_total_ = 0;
  mutable std::uint64_t charged_events_ = 0;
};

/// DetourSource for one rank of the fleet: a FleetNodeStream filtering and
/// costing the standard Poisson arrival stream. Same wrapper shape as
/// telemetry::AdaptiveDetourSource.
///
/// A DEAD node (every fault row offlined — see FleetEpochState::node_dead)
/// is a silent stream: peek_arrival() is kTimeNever and pop() must not be
/// called, exactly like NullDetourSource. The inner generator is then built
/// UNFILTERED so its constructor does not spin looking for an admissible
/// event; it is never consulted.
class FleetDetourSource final : public noise::DetourSource {
 public:
  FleetDetourSource(const FleetNoiseConfig& config,
                    std::shared_ptr<const FleetEpochState> state,
                    std::int32_t rank, std::uint64_t run_seed);

  TimeNs peek_arrival() const override {
    return dead_ ? kTimeNever : inner_.peek_arrival();
  }
  noise::Detour pop() override;

  /// Reseed-seam guard: a source may be recycled only for the same rank
  /// under the same config AND the same epoch state OBJECT. State identity
  /// is compared by address, which is sound because the source's
  /// shared_ptr keeps its state alive — a later epoch's state can never
  /// be allocated at that address while this source exists. (An owner
  /// check on the model's address would NOT be sound: the campaign builds
  /// one stack-local model per epoch in the same frame, so consecutive
  /// epochs' models alias.)
  bool matches(const FleetNoiseConfig& config, const FleetEpochState* state,
               std::int32_t rank) const;

  void reseed(std::uint64_t run_seed);

  const FleetNodeStream& stream() const { return stream_; }

 private:
  FleetNodeStream stream_;  // must precede inner_ (referenced by it)
  bool dead_ = false;       // must precede inner_ (selects its filter)
  noise::PoissonDetourSource inner_;
};

/// NoiseModel for one epoch of the fleet: every rank draws Poisson CEs on
/// its generation-resolved fault rows, offlined rows are silent, storms
/// charge mcelog-style escalating costs.
class FleetCeNoiseModel final : public noise::NoiseModel {
 public:
  FleetCeNoiseModel(const FleetNoiseConfig& config,
                    std::shared_ptr<const FleetEpochState> state);

  std::unique_ptr<noise::DetourSource> make_source(
      noise::RankId rank, std::uint64_t run_seed) const override;
  bool reseed_source(noise::DetourSource& source, noise::RankId rank,
                     std::uint64_t run_seed) const override;

  const FleetNoiseConfig& config() const { return config_; }
  const std::shared_ptr<const FleetEpochState>& state() const {
    return state_;
  }

 private:
  FleetNoiseConfig config_;
  std::shared_ptr<const FleetEpochState> state_;
};

/// Per-run observer feeding the MemDb: holds an exact replica of every
/// rank's source and advances it one pop() per consumed detour, verifying
/// (arrival, duration) agreement. Tallies come from the replicas, so CE
/// counts cover exactly the consumed prefix of each rank's stream, and
/// suppressed counts cover every swallowed event generated up to the next
/// admitted event after that prefix (generation runs one event ahead of
/// consumption). Both are pure functions of (state, run_seed, consumed
/// count) — identical for every jobs value.
class FleetCollector final : public noise::DetourSink {
 public:
  FleetCollector(const FleetNoiseConfig& config,
                 std::shared_ptr<const FleetEpochState> state);

  /// Arms for one run: one replica per rank, rebuilt for `run_seed`.
  void begin_run(std::int32_t ranks, std::uint64_t run_seed);

  void on_ce(std::int32_t rank, std::uint64_t index, TimeNs arrival,
             TimeNs duration) override;

  /// Folds this run's observations into a MemDb shard, mapping sim-time
  /// arrivals to fleet time as epoch_start + arrival.
  void fold_into(MemDb& shard, TimeNs epoch_start) const;

  std::uint64_t total_ces() const { return total_ces_; }

 private:
  struct Replica {
    std::unique_ptr<FleetNodeStream> stream;
    std::unique_ptr<noise::PoissonDetourSource> source;
    std::uint64_t consumed = 0;
  };

  FleetNoiseConfig config_;
  std::shared_ptr<const FleetEpochState> state_;
  std::vector<Replica> replicas_;
  std::uint64_t total_ces_ = 0;
};

}  // namespace celog::fleetdb
