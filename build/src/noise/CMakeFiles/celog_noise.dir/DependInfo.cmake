
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/deferred.cpp" "src/noise/CMakeFiles/celog_noise.dir/deferred.cpp.o" "gcc" "src/noise/CMakeFiles/celog_noise.dir/deferred.cpp.o.d"
  "/root/repo/src/noise/detour.cpp" "src/noise/CMakeFiles/celog_noise.dir/detour.cpp.o" "gcc" "src/noise/CMakeFiles/celog_noise.dir/detour.cpp.o.d"
  "/root/repo/src/noise/noise_model.cpp" "src/noise/CMakeFiles/celog_noise.dir/noise_model.cpp.o" "gcc" "src/noise/CMakeFiles/celog_noise.dir/noise_model.cpp.o.d"
  "/root/repo/src/noise/rank_noise.cpp" "src/noise/CMakeFiles/celog_noise.dir/rank_noise.cpp.o" "gcc" "src/noise/CMakeFiles/celog_noise.dir/rank_noise.cpp.o.d"
  "/root/repo/src/noise/selfish.cpp" "src/noise/CMakeFiles/celog_noise.dir/selfish.cpp.o" "gcc" "src/noise/CMakeFiles/celog_noise.dir/selfish.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/celog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
