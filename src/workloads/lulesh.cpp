// LULESH workload model (Table I).
//
// LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics)
// partitions a 3-D mesh into one cube per rank. A timestep is:
//   * force calculation over local elements (the dominant compute),
//   * 26-neighbor ghost exchange of nodal forces (faces carry planes, edges
//     carry lines, corners carry single nodes — hence very different sizes),
//   * position/velocity update compute,
//   * a second, smaller nodal-position ghost exchange,
//   * element-quantity update,
//   * TWO scalar MPI_Allreduce(MIN) calls for the next timestep size
//     (dtcourant and dthydro).
// Global synchronization thus happens every step, ~15 ms apart — the reason
// the paper finds LULESH among the most CE-noise-sensitive workloads.
//
// Rank counts: real LULESH requires a perfect cube. The paper runs 125-rank
// traces extrapolated to 16,000 processes; our generator accepts any rank
// count by factoring it into a near-cubic 3-D grid (exact cubes give the
// canonical decomposition). DESIGN.md records this substitution.
#include "collectives/collectives.hpp"
#include "workloads/models.hpp"
#include "workloads/patterns.hpp"
#include "workloads/topology.hpp"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace celog::workloads {
namespace {

class LuleshWorkload final : public Workload {
 public:
  std::string name() const override { return "lulesh"; }
  std::string description() const override {
    return "LULESH shock-hydrodynamics proxy (26-neighbor ghost exchange, "
           "two dt allreduces per step)";
  }

  // One global sync per step: force + update + element compute.
  TimeNs sync_period() const override {
    return kForceCompute + kUpdateCompute + kElementCompute;
  }

  TimeNs iteration_time() const override { return sync_period(); }

  // §III-D: 125-process traces, extrapolated to 16,000 (not 16,384).
  goal::Rank trace_ranks() const override { return 125; }

  goal::TaskGraph build(const WorkloadConfig& config) const override {
    goal::TaskGraph graph(config.ranks);
    BuildContext ctx(graph, config.seed);
    const goal::Rank block = effective_block(config);
    // Nodal-force halo: 45^2 plane of 8-byte values per face (~24 KB per
    // face at the paper's 45^3-per-rank trace problem).
    const NeighborLists force_halo =
        tile_blocks(config.ranks, block, [&](goal::Rank b) {
          return full_neighbors_3d(CartGrid(b, 3, /*periodic=*/false),
                                   /*face=*/24 * 1024, /*edge=*/1536,
                                   /*corner=*/64);
        });
    // Positions move fewer fields: half the payload.
    const NeighborLists position_halo =
        tile_blocks(config.ranks, block, [&](goal::Rank b) {
          return full_neighbors_3d(CartGrid(b, 3, /*periodic=*/false),
                                   /*face=*/12 * 1024, /*edge=*/768,
                                   /*corner=*/32);
        });
    const std::vector<double> imbalance = ctx.persistent_imbalance(kImbalance);

    const auto scaled = [&](TimeNs t) {
      return static_cast<TimeNs>(static_cast<double>(t) *
                                 config.compute_scale);
    };

    for (int step = 0; step < config.iterations; ++step) {
      compute_phase(ctx, scaled(kForceCompute), imbalance, kJitter);
      halo_exchange(ctx, force_halo);
      compute_phase(ctx, scaled(kUpdateCompute), imbalance, kJitter);
      halo_exchange(ctx, position_halo);
      compute_phase(ctx, scaled(kElementCompute), imbalance, kJitter);
      // dtcourant and dthydro: two back-to-back 8-byte MIN reductions.
      collectives::allreduce(ctx.builders(), 8, ctx.tags());
      collectives::allreduce(ctx.builders(), 8, ctx.tags());
    }
    graph.finalize();
    return graph;
  }

  bool has_generative() const override { return true; }

  std::optional<goal::GenerativeGraph> build_generative(
      const WorkloadConfig& config) const override {
    if (config.iterations < 1) return std::nullopt;
    goal::GenerativeBuilder b = generative_grid_builder(config);
    const auto force_links = generative_full_links_3d(
        /*face=*/24 * 1024, /*edge=*/1536, /*corner=*/64);
    const auto position_links = generative_full_links_3d(
        /*face=*/12 * 1024, /*edge=*/768, /*corner=*/32);
    const auto scaled = [&](TimeNs t) {
      return static_cast<TimeNs>(static_cast<double>(t) *
                                 config.compute_scale);
    };
    b.begin_body();
    generative_compute(b, scaled(kForceCompute), kImbalance, kJitter);
    b.halo(force_links);
    generative_compute(b, scaled(kUpdateCompute), kImbalance, kJitter);
    b.halo(position_links);
    generative_compute(b, scaled(kElementCompute), kImbalance, kJitter);
    b.allreduce(8);
    b.allreduce(8);
    return b.build(config.iterations);
  }

 private:
  static constexpr TimeNs kForceCompute = milliseconds(9);
  static constexpr TimeNs kUpdateCompute = milliseconds(4);
  static constexpr TimeNs kElementCompute = milliseconds(2);
  static constexpr double kJitter = 0.03;
  static constexpr double kImbalance = 0.04;
};

}  // namespace

std::shared_ptr<const Workload> make_lulesh() {
  return std::make_shared<LuleshWorkload>();
}

}  // namespace celog::workloads
