#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/run_context.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace celog::core {

/// The persistent sweep machinery behind measure()/run_once(): a bounded
/// free list of cached ThreadPools (leased one per in-flight parallel
/// measure(), so concurrent sweeps never serialize on one pool and never
/// fall back to building a throwaway pool per call — the steady-state
/// behavior a long-running sweep service needs) and a free list of
/// reusable RunContexts. Both are caches guarded by their own mutexes so
/// concurrent measure() calls on one runner — the RunnerCache sharing
/// pattern in the benches and the request scheduling in celogd — remain
/// safe: a pool leaves the free list before any sweep uses it, and a
/// context leaves the free list before any run touches it, so neither is
/// ever shared by two in-flight sweeps/runs.
struct ExperimentRunner::SweepState {
  /// Cached idle pools are capped: a burst of concurrent sweeps beyond the
  /// cap still gets a pool each (built fresh), but only this many park on
  /// the free list afterwards — bounding idle threads at steady state.
  static constexpr std::size_t kMaxIdlePools = 4;

  util::Mutex pool_mu;
  std::vector<std::unique_ptr<util::ThreadPool>> idle_pools
      CELOG_GUARDED_BY(pool_mu);

  util::Mutex ctx_mu;
  std::vector<std::unique_ptr<sim::RunContext>> free_contexts
      CELOG_GUARDED_BY(ctx_mu);

  /// Takes an idle pool of exactly `want` threads when one is cached;
  /// otherwise evicts one mismatched idle pool (bounding memory when the
  /// requested concurrency changes for good) and builds the right size.
  std::unique_ptr<util::ThreadPool> acquire_pool(unsigned want) {
    {
      util::MutexLock lock(pool_mu);
      for (auto it = idle_pools.begin(); it != idle_pools.end(); ++it) {
        if ((*it)->threads() == want) {
          std::unique_ptr<util::ThreadPool> pool = std::move(*it);
          idle_pools.erase(it);
          return pool;
        }
      }
      if (!idle_pools.empty()) idle_pools.pop_back();
    }
    return std::make_unique<util::ThreadPool>(want);
  }

  void release_pool(std::unique_ptr<util::ThreadPool> pool) {
    util::MutexLock lock(pool_mu);
    if (idle_pools.size() < kMaxIdlePools) {
      idle_pools.push_back(std::move(pool));
    }
  }

  /// RAII lease of one pool per in-flight parallel sweep. Returning the
  /// pool through the destructor keeps the cache intact when a sweep
  /// unwinds with an exception (the lowest-index rethrow from
  /// ThreadPool::parallel_for_slotted).
  struct PoolLease {
    SweepState& state;
    std::unique_ptr<util::ThreadPool> pool;
    PoolLease(SweepState& s, unsigned want)
        : state(s), pool(s.acquire_pool(want)) {}
    ~PoolLease() { state.release_pool(std::move(pool)); }
    PoolLease(const PoolLease&) = delete;
    PoolLease& operator=(const PoolLease&) = delete;
  };

  std::unique_ptr<sim::RunContext> acquire() {
    {
      util::MutexLock lock(ctx_mu);
      if (!free_contexts.empty()) {
        std::unique_ptr<sim::RunContext> ctx =
            std::move(free_contexts.back());
        free_contexts.pop_back();
        return ctx;
      }
    }
    return std::make_unique<sim::RunContext>();
  }

  void release(std::unique_ptr<sim::RunContext> ctx) {
    util::MutexLock lock(ctx_mu);
    free_contexts.push_back(std::move(ctx));
  }

  /// RAII lease of one context (run_once and serial measure paths).
  struct Lease {
    SweepState& state;
    std::unique_ptr<sim::RunContext> ctx;
    explicit Lease(SweepState& s) : state(s), ctx(s.acquire()) {}
    ~Lease() { state.release(std::move(ctx)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
  };

  /// RAII lease of one context per worker slot (parallel measure path).
  struct SlotLeases {
    SweepState& state;
    std::vector<std::unique_ptr<sim::RunContext>> ctxs;
    SlotLeases(SweepState& s, unsigned slots) : state(s) {
      ctxs.reserve(slots);
      for (unsigned k = 0; k < slots; ++k) ctxs.push_back(s.acquire());
    }
    ~SlotLeases() {
      for (auto& ctx : ctxs) state.release(std::move(ctx));
    }
    SlotLeases(const SlotLeases&) = delete;
    SlotLeases& operator=(const SlotLeases&) = delete;
  };
};

ScaledSystem scale_system(std::int64_t paper_nodes, goal::Rank max_ranks) {
  CELOG_ASSERT_MSG(paper_nodes > 0, "system must have nodes");
  CELOG_ASSERT_MSG(max_ranks > 0, "must simulate at least one rank");
  ScaledSystem s;
  if (paper_nodes <= max_ranks) {
    s.ranks = static_cast<goal::Rank>(paper_nodes);
    s.mtbce_divisor = 1.0;
  } else {
    s.ranks = max_ranks;
    s.mtbce_divisor =
        static_cast<double>(paper_nodes) / static_cast<double>(max_ranks);
  }
  return s;
}

TimeNs scaled_mtbce(const SystemConfig& system, const ScaledSystem& scale) {
  const double s = system.mtbce_node_seconds() / scale.mtbce_divisor;
  return from_seconds(s);
}

goal::Rank scaled_trace_block(const workloads::Workload& workload,
                              const ScaledSystem& scale) {
  const double shrunk =
      static_cast<double>(workload.trace_ranks()) / scale.mtbce_divisor;
  const auto block = static_cast<goal::Rank>(std::llround(shrunk));
  return std::clamp<goal::Rank>(block, 1, scale.ranks);
}

ExperimentRunner::ExperimentRunner(const workloads::Workload& workload,
                                   const workloads::WorkloadConfig& config,
                                   sim::NetworkParams net,
                                   sim::MatcherKind matcher, GraphRep rep)
    : sweep_(std::make_unique<SweepState>()) {
  if (rep == GraphRep::kGenerative) {
    gen_ = workload.build_generative(config);
  }
  if (gen_) {
    simulator_.emplace(*gen_, net);
  } else {
    graph_.emplace(workload.build(config));
    simulator_.emplace(*graph_, net);
  }
  simulator_->set_matcher(matcher);
  baseline_ = simulator_->run_baseline();
}

ExperimentRunner::~ExperimentRunner() = default;

sim::SimResult ExperimentRunner::run_once(const noise::NoiseModel& noise,
                                          std::uint64_t seed) const {
  return run_once(noise, seed, nullptr);
}

sim::SimResult ExperimentRunner::run_once(const noise::NoiseModel& noise,
                                          std::uint64_t seed,
                                          noise::DetourSink* ce_sink) const {
  SweepState::Lease lease(*sweep_);
  return simulator_->run(noise, seed, *lease.ctx,
                         noise::RankNoise::kNoHorizon, {}, ce_sink);
}

sim::SimResult ExperimentRunner::run_once(const noise::NoiseModel& noise,
                                          std::uint64_t seed,
                                          double horizon_factor) const {
  return run_once(noise, seed, horizon_factor, nullptr);
}

sim::SimResult ExperimentRunner::run_once(const noise::NoiseModel& noise,
                                          std::uint64_t seed,
                                          double horizon_factor,
                                          noise::DetourSink* ce_sink) const {
  CELOG_ASSERT_MSG(horizon_factor > 1.0, "horizon must exceed the baseline");
  const auto horizon = static_cast<TimeNs>(
      std::min(static_cast<double>(noise::RankNoise::kNoHorizon),
               static_cast<double>(baseline_.makespan) * horizon_factor));
  SweepState::Lease lease(*sweep_);
  return simulator_->run(noise, seed, *lease.ctx, horizon, {}, ce_sink);
}

SlowdownResult ExperimentRunner::measure(const noise::NoiseModel& noise,
                                         int seeds, std::uint64_t base_seed,
                                         double horizon_factor,
                                         int jobs) const {
  CELOG_ASSERT_MSG(seeds >= 1, "need at least one seed");
  CELOG_ASSERT_MSG(horizon_factor > 1.0, "horizon must exceed the baseline");
  const auto horizon = static_cast<TimeNs>(
      std::min(static_cast<double>(noise::RankNoise::kNoHorizon),
               static_cast<double>(baseline_.makespan) * horizon_factor));

  // Every seed's outcome lands in its index slot; the reduction below walks
  // the slots in seed order with the same arithmetic as a serial loop, so
  // the result does not depend on jobs or on thread scheduling. Seeds that
  // blow the horizon are recorded (not rethrown): the paper's no-progress
  // regime is a property of the cell, and the other seeds still yield a
  // partial measurement. Other errors (deadlock, invalid input) propagate,
  // lowest seed first.
  struct SeedOutcome {
    double pct = 0.0;
    double detours = 0.0;
    double stolen_s = 0.0;
    bool no_progress = false;
  };
  std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(seeds));
  const auto run_seed = [&](std::size_t i, sim::RunContext& ctx) {
    SeedOutcome& o = outcomes[i];
    try {
      const sim::SimResult r =
          simulator_->run(noise, base_seed + i, ctx, horizon);
      o.pct = sim::slowdown_percent(baseline_, r);
      o.detours = static_cast<double>(r.detours_charged);
      o.stolen_s = to_seconds(r.noise_stolen);
    } catch (const NoProgressError&) {
      o.no_progress = true;
    }
  };
  if (jobs > 1 && seeds > 1) {
    // Lease a cached pool for the duration of this sweep. Steady-state
    // repeated measure() calls reuse one parked pool; CONCURRENT measure()
    // calls (daemon workers, RunnerCache sharing in the benches) each get
    // their own leased pool — no serialization, and no per-call thread
    // churn on the contended path (the old fallback built and tore down a
    // throwaway ThreadPool on every contended call).
    const auto want = static_cast<unsigned>(std::min<int>(jobs, seeds));
    SweepState::PoolLease pool_lease(*sweep_, want);
    util::ThreadPool* pool = pool_lease.pool.get();
    // One context per worker slot: a slot runs at most one seed at a time,
    // so each context has exactly one in-flight run (Debug builds assert
    // this inside the engine) while still being reused for every seed the
    // slot claims.
    SweepState::SlotLeases leases(*sweep_, pool->threads());
    pool->parallel_for_slotted(
        outcomes.size(),
        [&](std::size_t i, unsigned slot) { run_seed(i, *leases.ctxs[slot]); });
  } else {
    SweepState::Lease lease(*sweep_);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      run_seed(i, *lease.ctx);
    }
  }

  RunningStats pct;
  RunningStats detours;
  RunningStats stolen;
  SlowdownResult out;
  out.baseline_makespan = baseline_.makespan;
  for (const SeedOutcome& o : outcomes) {
    if (o.no_progress) {
      out.no_progress = true;
      continue;
    }
    pct.add(o.pct);
    detours.add(o.detours);
    stolen.add(o.stolen_s);
  }
  out.mean_pct = pct.mean();
  out.stderr_pct = pct.stderr_mean();
  out.min_pct = pct.min();
  out.max_pct = pct.max();
  out.seeds = static_cast<int>(pct.count());
  out.mean_detours = detours.mean();
  out.mean_stolen_s = stolen.mean();
  return out;
}

}  // namespace celog::core
