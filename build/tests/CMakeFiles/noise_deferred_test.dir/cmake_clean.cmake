file(REMOVE_RECURSE
  "CMakeFiles/noise_deferred_test.dir/noise_deferred_test.cpp.o"
  "CMakeFiles/noise_deferred_test.dir/noise_deferred_test.cpp.o.d"
  "noise_deferred_test"
  "noise_deferred_test.pdb"
  "noise_deferred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_deferred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
