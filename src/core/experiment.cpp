#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace celog::core {

ScaledSystem scale_system(std::int64_t paper_nodes, goal::Rank max_ranks) {
  CELOG_ASSERT_MSG(paper_nodes > 0, "system must have nodes");
  CELOG_ASSERT_MSG(max_ranks > 0, "must simulate at least one rank");
  ScaledSystem s;
  if (paper_nodes <= max_ranks) {
    s.ranks = static_cast<goal::Rank>(paper_nodes);
    s.mtbce_divisor = 1.0;
  } else {
    s.ranks = max_ranks;
    s.mtbce_divisor =
        static_cast<double>(paper_nodes) / static_cast<double>(max_ranks);
  }
  return s;
}

TimeNs scaled_mtbce(const SystemConfig& system, const ScaledSystem& scale) {
  const double s = system.mtbce_node_seconds() / scale.mtbce_divisor;
  return from_seconds(s);
}

goal::Rank scaled_trace_block(const workloads::Workload& workload,
                              const ScaledSystem& scale) {
  const double shrunk =
      static_cast<double>(workload.trace_ranks()) / scale.mtbce_divisor;
  const auto block = static_cast<goal::Rank>(std::llround(shrunk));
  return std::clamp<goal::Rank>(block, 1, scale.ranks);
}

ExperimentRunner::ExperimentRunner(const workloads::Workload& workload,
                                   const workloads::WorkloadConfig& config,
                                   sim::NetworkParams net)
    : graph_(workload.build(config)),
      simulator_(graph_, net),
      baseline_(simulator_.run_baseline()) {}

sim::SimResult ExperimentRunner::run_once(const noise::NoiseModel& noise,
                                          std::uint64_t seed) const {
  return simulator_.run(noise, seed);
}

SlowdownResult ExperimentRunner::measure(const noise::NoiseModel& noise,
                                         int seeds, std::uint64_t base_seed,
                                         double horizon_factor) const {
  CELOG_ASSERT_MSG(seeds >= 1, "need at least one seed");
  CELOG_ASSERT_MSG(horizon_factor > 1.0, "horizon must exceed the baseline");
  const auto horizon = static_cast<TimeNs>(
      std::min(static_cast<double>(noise::RankNoise::kNoHorizon),
               static_cast<double>(baseline_.makespan) * horizon_factor));
  RunningStats pct;
  RunningStats detours;
  RunningStats stolen;
  SlowdownResult out;
  for (int i = 0; i < seeds; ++i) {
    try {
      const sim::SimResult r = simulator_.run(
          noise, base_seed + static_cast<std::uint64_t>(i), horizon);
      pct.add(sim::slowdown_percent(baseline_, r));
      detours.add(static_cast<double>(r.detours_charged));
      stolen.add(to_seconds(r.noise_stolen));
    } catch (const NoProgressError&) {
      out.no_progress = true;
      out.seeds = i;
      out.baseline_makespan = baseline_.makespan;
      return out;
    }
  }
  out.mean_pct = pct.mean();
  out.stderr_pct = pct.stderr_mean();
  out.min_pct = pct.min();
  out.max_pct = pct.max();
  out.seeds = seeds;
  out.baseline_makespan = baseline_.makespan;
  out.mean_detours = detours.mean();
  out.mean_stolen_s = stolen.mean();
  return out;
}

}  // namespace celog::core
