file(REMOVE_RECURSE
  "libcelog_goal.a"
)
