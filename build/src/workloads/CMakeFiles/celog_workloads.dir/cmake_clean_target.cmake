file(REMOVE_RECURSE
  "libcelog_workloads.a"
)
