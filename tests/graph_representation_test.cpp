// Differential tests of the graph representations behind the engine: the
// arena/SoA goal::TaskGraph (materialized) against goal::GenerativeGraph
// (lazy, decoded per-op from O(1) pattern parameters). The engine promises
// bit-identical SimResults for a generative graph and its materialize()d
// twin on EVERY input; these tests sweep stencil shapes from a single rank
// to 4096 ranks across both matchers, the noise-free fast path, and the
// RankNoise path, checking all seven SimResult fields.
//
// Also covered here: the O(active-ranks) engine state (sparse graphs where
// most ranks have no ops still report full-length rank_finish, inactive
// ranks at 0), context reuse and capacity release across graph rebinds
// (resident_bytes must shrink when a context moves from a big graph to a
// small one), the O(1) cached graph totals, and the generative pattern's
// structural invariants (torus peers, template sharing, rank-count caps).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "goal/generative.hpp"
#include "goal/task_graph.hpp"
#include "noise/detour.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "sim/run_context.hpp"
#include "util/error.hpp"

namespace celog::sim {
namespace {

using goal::GenerativeGraph;
using goal::OpIndex;
using goal::OpKind;
using goal::Rank;
using goal::SequentialBuilder;
using goal::StencilSpec;
using goal::TaskGraph;

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.rank_finish, b.rank_finish) << what;
  EXPECT_EQ(a.data_messages, b.data_messages) << what;
  EXPECT_EQ(a.control_messages, b.control_messages) << what;
  EXPECT_EQ(a.noise_stolen, b.noise_stolen) << what;
  EXPECT_EQ(a.detours_charged, b.detours_charged) << what;
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
}

/// Stencil shapes from degenerate to 3-D at 4096 ranks. Message sizes
/// straddle the cray_xc40 8 KiB eager threshold so both the eager and the
/// rendezvous protocol run through both representations.
std::vector<StencilSpec> differential_specs() {
  std::vector<StencilSpec> specs;
  StencilSpec s;
  s.dims = {1};  // single rank: pure calc chain
  s.iterations = 3;
  s.compute_ns = 1000;
  specs.push_back(s);
  s = StencilSpec{};
  s.dims = {2};  // smallest ring
  s.iterations = 4;
  s.message_bytes = 512;
  s.compute_ns = 2000;
  specs.push_back(s);
  s = StencilSpec{};
  s.dims = {17};  // odd ring, eager
  s.iterations = 5;
  s.message_bytes = 4096;
  s.compute_ns = 1500;
  s.jitter_ns = 700;
  s.seed = 42;
  specs.push_back(s);
  s = StencilSpec{};
  s.dims = {8, 1, 9};  // 2-D with a degenerate middle dim, rendezvous
  s.iterations = 3;
  s.message_bytes = 32768;
  s.compute_ns = 5000;
  s.jitter_ns = 1200;
  s.seed = 7;
  specs.push_back(s);
  s = StencilSpec{};
  s.dims = {16, 16, 16};  // 3-D torus at 4096 ranks, eager
  s.iterations = 2;
  s.message_bytes = 1024;
  s.compute_ns = 800;
  s.jitter_ns = 300;
  s.seed = 11;
  specs.push_back(s);
  return specs;
}

// Noise-free runs: the lazy and materialized representations must agree
// bit-for-bit under both matchers.
TEST(GenerativeDifferential, BaselineBitIdenticalToMaterialized) {
  for (const StencilSpec& spec : differential_specs()) {
    const GenerativeGraph lazy(spec);
    const TaskGraph dense = lazy.materialize();
    const std::string what = "ranks=" + std::to_string(lazy.ranks());
    for (const MatcherKind matcher :
         {MatcherKind::kBucketed, MatcherKind::kReference}) {
      Simulator lazy_sim(lazy, NetworkParams::cray_xc40());
      Simulator dense_sim(dense, NetworkParams::cray_xc40());
      lazy_sim.set_matcher(matcher);
      dense_sim.set_matcher(matcher);
      expect_identical(lazy_sim.run_baseline(), dense_sim.run_baseline(),
                       what);
    }
  }
}

// The same sweep under CE noise exercises the RankNoise instantiations of
// both graph policies (noise_stolen / detours_charged must agree too).
TEST(GenerativeDifferential, NoisyRunBitIdenticalToMaterialized) {
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(5)));
  for (const StencilSpec& spec : differential_specs()) {
    const GenerativeGraph lazy(spec);
    const TaskGraph dense = lazy.materialize();
    const Simulator lazy_sim(lazy, NetworkParams::cray_xc40());
    const Simulator dense_sim(dense, NetworkParams::cray_xc40());
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      expect_identical(lazy_sim.run(noise, seed), dense_sim.run(noise, seed),
                       "noisy ranks=" + std::to_string(lazy.ranks()));
    }
  }
}

// A reused RunContext must reproduce fresh-context results across repeated
// runs and across a lazy <-> materialized rebind (the rebind changes the
// EngineState's dynamic type, so the context rebuilds transparently).
TEST(GenerativeDifferential, ContextReuseAndRepresentationRebind) {
  StencilSpec spec;
  spec.dims = {6, 7};
  spec.iterations = 4;
  spec.message_bytes = 2048;
  spec.compute_ns = 900;
  spec.jitter_ns = 250;
  spec.seed = 3;
  const GenerativeGraph lazy(spec);
  const TaskGraph dense = lazy.materialize();
  const Simulator lazy_sim(lazy, NetworkParams::cray_xc40());
  const Simulator dense_sim(dense, NetworkParams::cray_xc40());
  const SimResult fresh = lazy_sim.run_baseline();

  RunContext ctx;
  for (int i = 0; i < 3; ++i) {
    expect_identical(lazy_sim.run_baseline(ctx), fresh, "reused lazy");
    expect_identical(dense_sim.run_baseline(ctx), fresh, "rebind to dense");
  }
}

// O(active ranks): a graph where only a few of many ranks carry ops still
// reports per-rank finish times for every rank — inactive ranks at 0 —
// and the engine state footprint tracks the active count, not ranks().
TEST(ActiveRankState, SparseGraphFinishTimesAndFootprint)
{
  constexpr Rank kRanks = 50000;
  TaskGraph g(kRanks);
  // Ops on three ranks only: 0 computes, 40000 and 49999 exchange.
  SequentialBuilder b0(g, 0), ba(g, 40000), bb(g, 49999);
  b0.calc(1000);
  ba.send(49999, 256, 5);
  bb.recv(40000, 256, 5);
  bb.calc(500);
  g.finalize();

  const Simulator sim(g, NetworkParams::cray_xc40());
  RunContext ctx;
  const SimResult res = sim.run_baseline(ctx);
  ASSERT_EQ(res.rank_finish.size(), static_cast<std::size_t>(kRanks));
  EXPECT_GT(res.rank_finish[0], 0);
  EXPECT_GT(res.rank_finish[40000], 0);
  EXPECT_GT(res.rank_finish[49999], 0);
  for (const Rank r : {1, 100, 25000, 49998}) {
    EXPECT_EQ(res.rank_finish[static_cast<std::size_t>(r)], 0)
        << "inactive rank " << r;
  }

  // 3 active ranks of state plus the rank -> slot map. The map alone is
  // 4 bytes/rank; per-active-rank state must not scale with ranks().
  const std::size_t resident = ctx.resident_bytes();
  EXPECT_GT(resident, 0u);
  EXPECT_LT(resident, static_cast<std::size_t>(kRanks) * 64);
}

// Rebinding a context from a big graph to a small one must release the big
// graph's capacity rather than pinning it for the context's lifetime.
TEST(ActiveRankState, RebindReleasesCapacity) {
  StencilSpec big;
  big.dims = {40, 40};
  big.iterations = 10;
  big.message_bytes = 1024;
  big.compute_ns = 500;
  const GenerativeGraph big_graph(big);

  StencilSpec small;
  small.dims = {4};
  small.iterations = 2;
  small.message_bytes = 256;
  small.compute_ns = 500;
  const GenerativeGraph small_graph(small);

  const Simulator big_sim(big_graph, NetworkParams::cray_xc40());
  const Simulator small_sim(small_graph, NetworkParams::cray_xc40());

  RunContext ctx;
  big_sim.run_baseline(ctx);
  const std::size_t big_resident = ctx.resident_bytes();
  small_sim.run_baseline(ctx);
  const std::size_t small_resident = ctx.resident_bytes();
  EXPECT_LT(small_resident, big_resident / 4)
      << "rebind to a 100x smaller graph kept most of the capacity";

  // And the rebind did not perturb results.
  expect_identical(small_sim.run_baseline(ctx), small_sim.run_baseline(),
                   "post-shrink rebind");
}

// The graph totals are cached at finalize() (O(1) on the serve hot path)
// and must equal a hand count; the pre-finalize fallback scans staging.
TEST(GraphTotals, CachedAtFinalizeAndConsistent) {
  TaskGraph g(3);
  SequentialBuilder b0(g, 0), b1(g, 1), b2(g, 2);
  b0.calc(100);
  b0.send(1, 4096, 1);
  b1.recv(0, 4096, 1);
  b1.send(2, 100000, 2);
  b2.recv(1, 100000, 2);
  b2.calc(200);

  // Pre-finalize fallback.
  EXPECT_EQ(g.total_ops(), 6u);
  EXPECT_EQ(g.total_bytes_sent(), 104096);
  EXPECT_EQ(g.count_ops(OpKind::kCalc), 2u);

  g.finalize();
  EXPECT_EQ(g.total_ops(), 6u);
  EXPECT_EQ(g.total_bytes_sent(), 104096);
  EXPECT_EQ(g.count_ops(OpKind::kCalc), 2u);
  EXPECT_EQ(g.count_ops(OpKind::kSend), 2u);
  EXPECT_EQ(g.count_ops(OpKind::kRecv), 2u);
  EXPECT_GT(g.resident_bytes(), 0u);
}

// Generative totals come from closed forms; they must match the
// materialized graph's (finalize-cached) counts exactly.
TEST(GraphTotals, GenerativeClosedFormsMatchMaterialized) {
  StencilSpec spec;
  spec.dims = {5, 6};
  spec.iterations = 7;
  spec.message_bytes = 333;
  spec.compute_ns = 100;
  const GenerativeGraph lazy(spec);
  const TaskGraph dense = lazy.materialize();
  EXPECT_EQ(lazy.ranks(), dense.ranks());
  EXPECT_EQ(lazy.total_ops(), dense.total_ops());
  EXPECT_EQ(lazy.total_bytes_sent(), dense.total_bytes_sent());
  for (const OpKind kind : {OpKind::kCalc, OpKind::kSend, OpKind::kRecv}) {
    EXPECT_EQ(lazy.count_ops(kind), dense.count_ops(kind));
  }
}

// The lazy representation's footprint is O(pattern): growing the rank
// count by 100x must not grow resident_bytes (the shared template and the
// torus geometry are rank-count independent).
TEST(GenerativeStructure, ResidentBytesIndependentOfRankCount) {
  StencilSpec spec;
  spec.dims = {10, 10};
  spec.iterations = 5;
  spec.message_bytes = 64;
  spec.compute_ns = 100;
  const GenerativeGraph small(spec);
  spec.dims = {100, 100};
  const GenerativeGraph big(spec);
  EXPECT_EQ(small.resident_bytes(), big.resident_bytes());
  EXPECT_EQ(big.total_ops(), 100u * small.total_ops());
}

// Torus peers: interior, wrap-around, and degenerate dimensions.
TEST(GenerativeStructure, TorusPeersAndProgramShape) {
  StencilSpec spec;
  spec.dims = {4, 5};
  spec.iterations = 1;
  spec.message_bytes = 8;
  spec.compute_ns = 1;
  const GenerativeGraph g(spec);
  ASSERT_EQ(g.ranks(), 20);
  ASSERT_EQ(g.neighbors(), 4u);
  ASSERT_EQ(g.ops_per_rank(), 9u);  // 1 calc + 4 x (send + recv)

  // Rank 7 = (row 1, col 2) in the 4 x 5 row-major layout.
  const auto prog = g.program(7);
  ASSERT_EQ(prog.size(), 9u);
  EXPECT_EQ(prog.op(0).kind, OpKind::kCalc);
  // Template order: +row, -row, +col, -col; rows stride 5, cols stride 1.
  EXPECT_EQ(prog.op(1).peer, 12);  // send +row
  EXPECT_EQ(prog.op(3).peer, 2);   // send -row
  EXPECT_EQ(prog.op(5).peer, 8);   // send +col
  EXPECT_EQ(prog.op(7).peer, 6);   // send -col
  for (const OpIndex i : {1u, 3u, 5u, 7u}) {
    EXPECT_EQ(prog.op(i).kind, OpKind::kSend);
    EXPECT_EQ(prog.op(i + 1).kind, OpKind::kRecv);
    EXPECT_EQ(prog.op(i + 1).peer, prog.op(i).peer);
    EXPECT_EQ(prog.op(i).tag, 0);
  }

  // Corner rank 0 wraps both ways.
  const auto corner = g.program(0);
  EXPECT_EQ(corner.op(1).peer, 5);   // +row
  EXPECT_EQ(corner.op(3).peer, 15);  // -row wraps
  EXPECT_EQ(corner.op(5).peer, 1);   // +col
  EXPECT_EQ(corner.op(7).peer, 4);   // -col wraps
}

TEST(GenerativeStructure, RejectsInvalidSpecs) {
  StencilSpec spec;
  EXPECT_THROW(GenerativeGraph{spec}, InvalidInputError);  // no dims
  spec.dims = {4};
  spec.iterations = 0;
  EXPECT_THROW(GenerativeGraph{spec}, InvalidInputError);
  spec.iterations = 1;
  spec.message_bytes = -1;
  EXPECT_THROW(GenerativeGraph{spec}, InvalidInputError);
  spec.message_bytes = 0;
  spec.dims = {4, 0};
  EXPECT_THROW(GenerativeGraph{spec}, InvalidInputError);
  spec.dims = {2, 2, 2, 2, 2};  // five active dims
  EXPECT_THROW(GenerativeGraph{spec}, InvalidInputError);
  spec.dims = {1 << 16, 1 << 16};  // 2^32 ranks overflows the packed peer
  EXPECT_THROW(GenerativeGraph{spec}, InvalidInputError);
}

// A 1M-rank graph is constructible and addressable in O(1) — only
// materialization is refused at that scale.
TEST(GenerativeStructure, MillionRankGraphIsCheap) {
  StencilSpec spec;
  spec.dims = {100, 100, 100};
  spec.iterations = 50;
  spec.message_bytes = 4096;
  spec.compute_ns = 1000;
  const GenerativeGraph g(spec);
  EXPECT_EQ(g.ranks(), 1000000);
  // 6 torus neighbours -> 1 calc + 6 sends + 6 recvs per iteration.
  EXPECT_EQ(g.total_ops(), 1000000u * 50u * 13u);
  EXPECT_LT(g.resident_bytes(), std::size_t{64} * 1024);
  const auto prog = g.program(999999);
  EXPECT_EQ(prog.op(0).kind, OpKind::kCalc);
  EXPECT_THROW(static_cast<void>(g.materialize()), InvalidInputError);
}

// Deadlock diagnostics survive the active-rank compaction: a message into
// a rank with no program of its own must still be reported (the receiver
// is active purely by virtue of the inbound message).
TEST(ActiveRankState, DeadlockDiagnosticsCoverInboundOnlyRanks) {
  TaskGraph g(300);
  SequentialBuilder sender(g, 4);
  // Rendezvous-sized (above the 8 KiB eager threshold) so the send blocks
  // on a CTS that can never come: rank 250 posts no recv.
  sender.send(250, 64 * 1024, 9);
  g.finalize();
  const Simulator sim(g, NetworkParams::cray_xc40());
  try {
    sim.run_baseline();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 250"), std::string::npos) << msg;
    EXPECT_NE(msg.find("never received"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace celog::sim
