// celog/telemetry/ce_record.hpp
//
// Decoded CE records: the telemetry view of a detour event.
//
// The simulator models a CE as a bare (arrival, duration) CPU steal; real
// logging stacks (mcelog, the EDAC drivers) additionally decode the machine
// check's physical address into DIMM / channel / bank / row so that
// per-DIMM rate limiting and page offlining can key on topology. celog has
// no physical addresses, so this header synthesizes them: each simulated
// node owns a small set of "fault rows" — distinct (dimm, channel, bank,
// row) tuples derived deterministically from (run_seed, rank) — and every
// CE event index hashes onto one of them. This mirrors the empirical
// structure the paper leans on (a node's CEs come overwhelmingly from a
// few failing rows, which is what makes page offlining effective) while
// staying a pure function of (run_seed, rank, index): the policy charging
// costs inside the run and the collector observing it from outside decode
// the SAME stream to the SAME addresses, with no shared state.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace celog::telemetry {

/// DRAM topology of one simulated node, used to bound synthetic addresses.
/// Defaults sketch a two-socket node with 8 DIMMs; only the *shape* matters
/// (how many distinct DIMMs CEs can spread over), not electrical realism.
struct DimmGeometry {
  std::uint32_t dimms = 8;       ///< DIMM slots per node.
  std::uint32_t channels = 4;    ///< memory channels per node.
  std::uint32_t banks = 16;      ///< banks per DIMM.
  std::uint32_t rows = 1u << 15; ///< rows per bank (synthetic id space).

  bool operator==(const DimmGeometry&) const = default;
};

/// Decoded location of one CE, the analogue of mcelog's ADDR decode.
struct DimmAddress {
  std::uint32_t dimm = 0;
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;

  bool operator==(const DimmAddress&) const = default;
};

/// What the logging policy did with one CE. Exactly one action per CE;
/// the precedence (retired > page-offline > storm-decode > rate-limited >
/// logged) is fixed by StreamAccountant::observe (telemetry/policy.hpp).
enum class CeAction : std::uint8_t {
  /// Normal path: OS decode + log (CMCI handler).
  kLogged = 0,
  /// A storm is in progress; the individual CE was counted but not logged.
  kRateLimited,
  /// This CE tripped the per-DIMM leaky bucket: one storm summary is
  /// decoded/logged (firmware path) and logging is suppressed until the
  /// storm subsides.
  kStormDecode,
  /// This CE pushed its row over the offline threshold: the page-offline
  /// action runs once and the row is retired.
  kPageOffline,
  /// The row was already retired; hardware corrects silently.
  kRetired,
};

inline constexpr int kCeActionCount = 5;

/// Stable lower-case name for exports ("logged", "rate_limited", ...).
constexpr const char* to_string(CeAction a) {
  switch (a) {
    case CeAction::kLogged: return "logged";
    case CeAction::kRateLimited: return "rate_limited";
    case CeAction::kStormDecode: return "storm_decode";
    case CeAction::kPageOffline: return "page_offline";
    case CeAction::kRetired: return "retired";
  }
  return "unknown";
}

/// One fully decoded CE as the collector stores it.
struct CeRecord {
  std::int32_t rank = 0;        ///< simulated rank (== node).
  std::uint64_t index = 0;      ///< per-rank CE index (0, 1, 2, ...).
  TimeNs arrival = 0;           ///< sim-time arrival of the detour.
  TimeNs duration = 0;          ///< CPU time actually charged by the run.
  DimmAddress address;          ///< synthetic decode of the fault location.
  CeAction action = CeAction::kLogged;
};

/// Deterministic (run_seed, rank) -> fault-row table and
/// (index) -> fault-row mapping. Pure functions of its inputs: two
/// decoders built with the same (geometry, fault_rows, run_seed, rank)
/// produce identical addresses for every index, which is what lets the
/// in-run policy and the out-of-run collector agree without sharing state.
class CeDecoder {
 public:
  CeDecoder() = default;

  CeDecoder(const DimmGeometry& geometry, std::uint32_t fault_rows,
            std::uint64_t run_seed, std::int32_t rank) {
    reset(geometry, fault_rows, run_seed, rank);
  }

  /// Re-derives the fault-row table for a new (run_seed, rank) without
  /// giving up the vector's capacity — the RunContext-reuse path.
  void reset(const DimmGeometry& geometry, std::uint32_t fault_rows,
             std::uint64_t run_seed, std::int32_t rank) {
    CELOG_ASSERT_MSG(fault_rows > 0, "need at least one fault row");
    CELOG_ASSERT_MSG(geometry.dimms > 0 && geometry.channels > 0 &&
                         geometry.banks > 0 && geometry.rows > 0,
                     "DIMM geometry dimensions must be positive");
    geometry_ = geometry;
    slot_seed_ = stream_key(run_seed, rank) ^ kSlotSalt;
    slots_.clear();
    slots_.reserve(fault_rows);
    // The fault-row table comes from its own SplitMix64 stream so it is
    // independent of both the detour RNG (xoshiro seeded via for_stream)
    // and the per-index slot hash below.
    SplitMix64 table(stream_key(run_seed, rank) ^ kTableSalt);
    for (std::uint32_t s = 0; s < fault_rows; ++s) {
      DimmAddress a;
      a.dimm = static_cast<std::uint32_t>(table.next() % geometry.dimms);
      a.channel =
          static_cast<std::uint32_t>(table.next() % geometry.channels);
      a.bank = static_cast<std::uint32_t>(table.next() % geometry.banks);
      a.row = static_cast<std::uint32_t>(table.next() % geometry.rows);
      slots_.push_back(a);
    }
  }

  /// Which fault row the `index`-th CE of this (run_seed, rank) stream
  /// strikes. Stateless hash — any index may be queried in any order.
  std::uint32_t slot_of(std::uint64_t index) const {
    CELOG_ASSERT_MSG(!slots_.empty(), "decoder not initialized");
    SplitMix64 h(slot_seed_ ^ (index * 0x9e3779b97f4a7c15ULL));
    return static_cast<std::uint32_t>(h.next() % slots_.size());
  }

  const DimmAddress& address(std::uint32_t slot) const {
    CELOG_ASSERT(slot < slots_.size());
    return slots_[slot];
  }

  DimmAddress decode(std::uint64_t index) const {
    return slots_[slot_of(index)];
  }

  std::uint32_t fault_rows() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  const DimmGeometry& geometry() const { return geometry_; }

 private:
  /// Same decorrelation shape as Xoshiro256::for_stream, with distinct
  /// salts so decode streams never alias the arrival/duration streams.
  static std::uint64_t stream_key(std::uint64_t run_seed,
                                  std::int32_t rank) {
    return run_seed ^ (static_cast<std::uint64_t>(rank) *
                       std::uint64_t{0xd6e8feb86659fd93ULL});
  }

  static constexpr std::uint64_t kTableSalt = 0x7c15bf58476d1ce4ULL;
  static constexpr std::uint64_t kSlotSalt = 0x94d049bb133111ebULL;

  DimmGeometry geometry_;
  std::uint64_t slot_seed_ = 0;
  std::vector<DimmAddress> slots_;
};

}  // namespace celog::telemetry
