#include <gtest/gtest.h>

#include <array>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace celog {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name  | value"), std::string::npos);
  EXPECT_NE(out.find("------+------"), std::string::npos);
  EXPECT_NE(out.find("alpha |     1"), std::string::npos);
  EXPECT_NE(out.find("b     |    22"), std::string::npos);
}

TEST(TextTableTest, FirstColumnLeftAlignedByDefault) {
  TextTable t({"k", "v"});
  t.add_row({"a", "1"});
  t.add_row({"long", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a    |"), std::string::npos);
}

TEST(TextTableTest, SetAlignOverrides) {
  TextTable t({"k", "v"});
  t.set_align(1, Align::kLeft);
  t.add_row({"a", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a | 1 "), std::string::npos);
}

TEST(TextTableTest, CountsRowsAndColumns) {
  TextTable t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Formatting, FixedAndSci) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
}

TEST(Formatting, PercentBuckets) {
  EXPECT_EQ(format_percent(0.005), "<0.01");
  EXPECT_EQ(format_percent(0.5), "0.50");
  EXPECT_EQ(format_percent(42.123), "42.12");
  EXPECT_EQ(format_percent(537.0), "537.0");
}

TEST(Formatting, CountSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(16384), "16,384");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-16384), "-16,384");
}

class CliTest : public ::testing::Test {
 protected:
  bool parse(std::initializer_list<const char*> args) {
    argv_.assign(args.begin(), args.end());
    argv_.insert(argv_.begin(), "prog");
    return cli_.parse(static_cast<int>(argv_.size()), argv_.data());
  }

  Cli cli_{"test program"};
  std::vector<const char*> argv_;
};

TEST_F(CliTest, DefaultsApply) {
  cli_.add_option("nodes", "1024", "node count");
  ASSERT_TRUE(parse({}));
  EXPECT_EQ(cli_.get("nodes"), "1024");
  EXPECT_EQ(cli_.get_int("nodes"), 1024);
}

TEST_F(CliTest, SpaceSeparatedValue) {
  cli_.add_option("nodes", "1024", "node count");
  ASSERT_TRUE(parse({"--nodes", "64"}));
  EXPECT_EQ(cli_.get_int("nodes"), 64);
}

TEST_F(CliTest, EqualsSeparatedValue) {
  cli_.add_option("mtbce-s", "1.0", "mtbce");
  ASSERT_TRUE(parse({"--mtbce-s=0.25"}));
  EXPECT_DOUBLE_EQ(cli_.get_double("mtbce-s"), 0.25);
}

TEST_F(CliTest, FlagsDefaultOffAndTurnOn) {
  cli_.add_flag("full", "run at paper scale");
  ASSERT_TRUE(parse({}));
  EXPECT_FALSE(cli_.get_flag("full"));
  ASSERT_TRUE(parse({"--full"}));
  EXPECT_TRUE(cli_.get_flag("full"));
}

TEST_F(CliTest, UnknownOptionFails) {
  cli_.add_option("nodes", "1", "n");
  EXPECT_FALSE(parse({"--bogus", "3"}));
  EXPECT_FALSE(cli_.error().empty());
}

TEST_F(CliTest, MissingValueFails) {
  cli_.add_option("nodes", "1", "n");
  EXPECT_FALSE(parse({"--nodes"}));
  EXPECT_FALSE(cli_.error().empty());
}

TEST_F(CliTest, FlagWithValueFails) {
  cli_.add_flag("full", "f");
  EXPECT_FALSE(parse({"--full=1"}));
}

TEST_F(CliTest, PositionalArgumentFails) {
  EXPECT_FALSE(parse({"stray"}));
}

TEST_F(CliTest, HelpReturnsFalseWithoutError) {
  cli_.add_option("nodes", "1", "n");
  EXPECT_FALSE(parse({"--help"}));
  EXPECT_TRUE(cli_.error().empty());
}

TEST_F(CliTest, NonNumericValueThrows) {
  cli_.add_option("nodes", "1", "n");
  ASSERT_TRUE(parse({"--nodes", "abc"}));
  EXPECT_THROW(cli_.get_int("nodes"), ParseError);
  EXPECT_THROW(cli_.get_double("nodes"), ParseError);
}

TEST_F(CliTest, NonFiniteDoubleThrows) {
  // ISSUE-6 bugfix: strtod happily parses "inf"/"nan" and saturates
  // overflowing literals to +-inf with no error indication, so --sim-s inf
  // used to flow straight into horizon arithmetic. celogd parses this same
  // grammar from untrusted clients; non-finite values are parse errors.
  cli_.add_option("sim-s", "4", "s");
  for (const char* bad : {"inf", "+inf", "-inf", "infinity", "nan", "NAN",
                          "nan(0x1)", "1e99999", "-1e99999"}) {
    ASSERT_TRUE(parse({"--sim-s", bad})) << bad;
    EXPECT_THROW(cli_.get_double("sim-s"), ParseError) << bad;
  }
}

TEST_F(CliTest, FiniteEdgeDoublesParse) {
  cli_.add_option("sim-s", "4", "s");
  // Underflow to a denormal (or zero) is finite and usable — only
  // non-finite results are rejected.
  ASSERT_TRUE(parse({"--sim-s", "1e-320"}));
  EXPECT_GE(cli_.get_double("sim-s"), 0.0);
  ASSERT_TRUE(parse({"--sim-s", "1.7e308"}));
  EXPECT_DOUBLE_EQ(cli_.get_double("sim-s"), 1.7e308);
  ASSERT_TRUE(parse({"--sim-s", "-0.25"}));
  EXPECT_DOUBLE_EQ(cli_.get_double("sim-s"), -0.25);
}

TEST_F(CliTest, OutOfRangeIntThrows) {
  cli_.add_option("nodes", "1", "n");
  ASSERT_TRUE(parse({"--nodes", "9223372036854775808"}));  // LLONG_MAX + 1
  EXPECT_THROW(cli_.get_int("nodes"), ParseError);
  ASSERT_TRUE(parse({"--nodes", "-9223372036854775809"}));
  EXPECT_THROW(cli_.get_int("nodes"), ParseError);
  ASSERT_TRUE(parse({"--nodes", "9223372036854775807"}));
  EXPECT_EQ(cli_.get_int("nodes"), 9223372036854775807LL);
}

TEST_F(CliTest, QuietModeSuppressesUsageButKeepsError) {
  cli_.set_quiet(true);
  cli_.add_option("nodes", "1", "n");
  // Capture nothing: quiet mode exists so the daemon can turn a bad
  // request line into an error string without writing usage to stderr.
  EXPECT_FALSE(parse({"--bogus", "1"}));
  EXPECT_NE(cli_.error().find("unknown option"), std::string::npos);
  EXPECT_FALSE(parse({"--help"}));
  EXPECT_TRUE(cli_.error().empty());
}

TEST_F(CliTest, UsageListsOptions) {
  cli_.add_option("nodes", "1024", "node count");
  cli_.add_flag("full", "paper scale");
  const std::string u = cli_.usage();
  EXPECT_NE(u.find("--nodes"), std::string::npos);
  EXPECT_NE(u.find("--full"), std::string::npos);
  EXPECT_NE(u.find("node count"), std::string::npos);
  EXPECT_NE(u.find("default: 1024"), std::string::npos);
}

}  // namespace
}  // namespace celog
