// celog/util/stats.hpp
//
// Streaming and batch statistics used by experiment reports: Welford running
// moments, percentiles, and fixed-width histograms for detour-trace analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace celog {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;

  /// Merges another accumulator into this one (parallel reduction-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` using linear interpolation
/// between order statistics (the same convention as numpy's default).
/// The input span is copied; the original order is preserved.
double percentile(std::span<const double> values, double q);

/// Fixed-width histogram over [lo, hi). Out-of-range samples are NOT folded
/// into the edge bins (that would conflate genuine edge-bin mass with
/// clipping); they are tallied in explicit underflow()/overflow() counters
/// so no sample is silently dropped and none is misattributed.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  /// Every sample ever added, in range or not.
  std::size_t total() const { return total_; }
  /// Samples that landed inside [lo, hi) and were binned.
  std::size_t in_range() const { return total_ - underflow_ - overflow_; }
  /// Samples with x < lo.
  std::size_t underflow() const { return underflow_; }
  /// Samples with x >= hi (the hi boundary itself is out of range).
  std::size_t overflow() const { return overflow_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Merges another histogram's counts into this one (parallel
  /// reduction-friendly, like RunningStats::merge). Both histograms must
  /// share the same [lo, hi) range and bin count; a mismatch throws
  /// celog::Error in every build — merging differently shaped histograms
  /// would silently misattribute mass, never a rebinning.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace celog
