#include "fleetdb/maintenance.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace celog::fleetdb {

AgeReplacePolicy::AgeReplacePolicy(TimeNs service_life)
    : service_life_(service_life) {
  CELOG_ASSERT_MSG(service_life > 0, "service life must be positive");
}

TimeNs AgeReplacePolicy::life_of(const DimmKey& key) const {
  // Deterministic stagger in [0, life/4): hash of the slot identity, no
  // RNG state involved.
  SplitMix64 h((static_cast<std::uint64_t>(key.node) << 32) ^ key.dimm ^
               0x243f6a8885a308d3ULL);
  const TimeNs window = service_life_ / 4;
  if (window <= 0) return service_life_;
  return service_life_ +
         static_cast<TimeNs>(h.next() % static_cast<std::uint64_t>(window));
}

void AgeReplacePolicy::decide(const MemDb& db, const CampaignContext& ctx,
                              std::vector<MaintenanceAction>& out) {
  for (const auto& [key, rec] : db.dimms()) {
    if (ctx.fleet_now - rec.installed_at >= life_of(key)) {
      out.push_back({MaintenanceAction::Kind::kReplaceDimm,
                     RowKey{key.node, key.dimm, 0}});
    }
  }
}

ThresholdMaintenancePolicy::ThresholdMaintenancePolicy()
    : ThresholdMaintenancePolicy(Config{}) {}

ThresholdMaintenancePolicy::ThresholdMaintenancePolicy(const Config& config)
    : config_(config) {
  CELOG_ASSERT_MSG(config.row_offline_ces > 0,
                   "row offline threshold must be positive");
}

void ThresholdMaintenancePolicy::decide(const MemDb& db,
                                        const CampaignContext& ctx,
                                        std::vector<MaintenanceAction>& out) {
  static_cast<void>(ctx);
  // Pass 1: offline rows over threshold. Track per-DIMM offlined counts
  // INCLUDING the offline actions emitted this pass, so a burst that
  // offlines the k-th row triggers the replacement in the same decision
  // round — mcelog's triggers compose the same way.
  DimmKey current{-1, 0};
  std::uint32_t offlined_on_current = 0;
  std::size_t first_action_on_current = 0;
  const auto close_dimm = [&]() {
    if (current.node < 0) return;
    const bool rows_trip = config_.dimm_replace_offlined_rows > 0 &&
                           offlined_on_current >=
                               config_.dimm_replace_offlined_rows;
    const DimmRec* rec = db.find_dimm(current);
    const bool ces_trip = config_.dimm_replace_ces > 0 && rec != nullptr &&
                          rec->ces >= config_.dimm_replace_ces;
    if (rows_trip || ces_trip) {
      // Replacement supersedes this round's offline actions on the module
      // (its rows are erased anyway): drop them and emit the replace.
      out.resize(first_action_on_current);
      out.push_back({MaintenanceAction::Kind::kReplaceDimm,
                     RowKey{current.node, current.dimm, 0}});
    }
  };
  for (const auto& [key, rec] : db.rows()) {
    const DimmKey dk{key.node, key.dimm};
    if (current.node < 0 || dk != current) {
      close_dimm();
      current = dk;
      offlined_on_current = 0;
      first_action_on_current = out.size();
    }
    if (rec.offlined != 0) {
      ++offlined_on_current;
      continue;
    }
    if (rec.ces >= config_.row_offline_ces) {
      out.push_back({MaintenanceAction::Kind::kOfflineRow, key});
      ++offlined_on_current;
    }
  }
  close_dimm();
}

CostModelPolicy::CostModelPolicy() : CostModelPolicy(Config{}) {}

CostModelPolicy::CostModelPolicy(const Config& config) : config_(config) {
  CELOG_ASSERT_MSG(config.risk_scale > 0.0, "risk scale must be positive");
  CELOG_ASSERT_MSG(config.ue_weight >= 0.0 && config.page_cost >= 0.0 &&
                       config.dimm_cost >= 0.0,
                   "costs must be nonnegative");
}

void CostModelPolicy::decide(const MemDb& db, const CampaignContext& ctx,
                             std::vector<MaintenanceAction>& out) {
  static_cast<void>(ctx);
  // Per-row UE risk: pure function of the row's integer history.
  const auto p_ue = [this](const RowRec& rec) {
    const double exposure =
        static_cast<double>(rec.ces + rec.suppressed) / config_.risk_scale;
    return 1.0 - std::exp(-exposure);
  };
  DimmKey current{-1, 0};
  double serve_risk = 0.0;  // in-order fold over one module's serving rows
  std::size_t first_action_on_current = 0;
  const auto close_dimm = [&]() {
    if (current.node < 0) return;
    if (serve_risk * config_.ue_weight > config_.dimm_cost) {
      out.resize(first_action_on_current);
      out.push_back({MaintenanceAction::Kind::kReplaceDimm,
                     RowKey{current.node, current.dimm, 0}});
    }
  };
  for (const auto& [key, rec] : db.rows()) {
    const DimmKey dk{key.node, key.dimm};
    if (current.node < 0 || dk != current) {
      close_dimm();
      current = dk;
      serve_risk = 0.0;
      first_action_on_current = out.size();
    }
    if (rec.offlined != 0) continue;
    const double risk = p_ue(rec);
    if (risk * config_.ue_weight > config_.page_cost) {
      out.push_back({MaintenanceAction::Kind::kOfflineRow, key});
      // An offlined row stops serving: it no longer contributes to the
      // module's residual serve-risk.
      continue;
    }
    serve_risk += risk;
  }
  close_dimm();
}

}  // namespace celog::fleetdb
