// examples/trace_roundtrip.cpp
//
// Demonstrates the trace layer, the part of the toolchain that corresponds
// to LogGOPSim's trace handling (§III-C/D of the paper):
//   1. generate a small workload trace (the stand-in for a collected MPI
//      trace);
//   2. save it in the GOAL text format;
//   3. reload it and verify the simulation is identical;
//   4. extrapolate it k-fold, the way the paper extrapolates 128-process
//      Mutrino traces to 16,384 simulated nodes, and simulate the larger
//      machine under CE noise.
#include <cstdio>
#include <string>

#include "core/logging_mode.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace celog;
  Cli cli("trace_roundtrip: save, reload, and extrapolate a workload trace");
  cli.add_option("workload", "minife", "workload to trace");
  cli.add_option("ranks", "16", "ranks in the collected trace");
  cli.add_option("factor", "8", "extrapolation factor");
  cli.add_option("out", "/tmp/celog_trace.goal", "trace file path");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const auto workload = workloads::find_workload(cli.get("workload"));
  workloads::WorkloadConfig config;
  config.ranks = static_cast<goal::Rank>(cli.get_int("ranks"));
  config.iterations = 3;

  const goal::TaskGraph original = workload->build(config);
  const std::string path = cli.get("out");
  trace::save_goal(path, original);
  std::printf("1. traced %s: %d ranks, %zu ops -> %s\n",
              workload->name().c_str(), original.ranks(),
              original.total_ops(), path.c_str());

  const goal::TaskGraph loaded = trace::load_goal(path);
  const sim::Simulator sim_orig(original, sim::NetworkParams::cray_xc40());
  const sim::Simulator sim_load(loaded, sim::NetworkParams::cray_xc40());
  const TimeNs t_orig = sim_orig.run_baseline().makespan;
  const TimeNs t_load = sim_load.run_baseline().makespan;
  std::printf("2. reloaded: %zu ops, makespan %s (original %s) -> %s\n",
              loaded.total_ops(), format_duration(t_load).c_str(),
              format_duration(t_orig).c_str(),
              t_orig == t_load ? "identical" : "MISMATCH");

  const int factor = static_cast<int>(cli.get_int("factor"));
  const goal::TaskGraph big = trace::extrapolate(loaded, factor);
  const sim::Simulator sim_big(big, sim::NetworkParams::cray_xc40());
  const sim::SimResult base = sim_big.run_baseline();
  std::printf("3. extrapolated x%d: %d ranks, %zu ops, baseline %s\n",
              factor, big.ranks(), big.total_ops(),
              format_duration(base.makespan).c_str());

  const noise::UniformCeNoiseModel noise(seconds(2),
                                         core::cost_model(
                                             core::LoggingMode::kFirmware));
  const sim::SimResult noisy = sim_big.run(noise, 42);
  std::printf("4. with firmware-logged CEs every 2 s/node: makespan %s "
              "(slowdown %.2f%%)\n",
              format_duration(noisy.makespan).c_str(),
              sim::slowdown_percent(base, noisy));
  return 0;
}
