#include "noise/noise_model.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace celog::noise {

bool NoiseModel::reseed_source(DetourSource&, RankId, std::uint64_t) const {
  return false;
}

std::unique_ptr<DetourSource> NoNoiseModel::make_source(RankId,
                                                        std::uint64_t) const {
  return std::make_unique<NullDetourSource>();
}

bool NoNoiseModel::reseed_source(DetourSource& source, RankId,
                                 std::uint64_t) const {
  // A null stream is stateless: any NullDetourSource is already "reseeded".
  return dynamic_cast<NullDetourSource*>(&source) != nullptr;
}

UniformCeNoiseModel::UniformCeNoiseModel(
    TimeNs mtbce, std::shared_ptr<const LoggingCostModel> cost)
    : mtbce_(mtbce), cost_(std::move(cost)) {
  CELOG_ASSERT_MSG(mtbce_ > 0, "MTBCE must be positive");
  CELOG_ASSERT_MSG(cost_ != nullptr, "cost model required");
}

std::unique_ptr<DetourSource> UniformCeNoiseModel::make_source(
    RankId rank, std::uint64_t run_seed) const {
  return std::make_unique<PoissonDetourSource>(
      mtbce_, *cost_,
      Xoshiro256::for_stream(run_seed, static_cast<std::uint64_t>(rank)));
}

bool UniformCeNoiseModel::reseed_source(DetourSource& source, RankId rank,
                                        std::uint64_t run_seed) const {
  // reseed() with the same for_stream RNG that make_source feeds a fresh
  // source replays the identical arrival/duration stream; emits() guards
  // against a source built by a model with different parameters.
  auto* poisson = dynamic_cast<PoissonDetourSource*>(&source);
  if (poisson == nullptr || !poisson->emits(mtbce_, *cost_)) return false;
  poisson->reseed(
      Xoshiro256::for_stream(run_seed, static_cast<std::uint64_t>(rank)));
  return true;
}

SingleRankCeNoiseModel::SingleRankCeNoiseModel(
    RankId noisy_rank, TimeNs mtbce,
    std::shared_ptr<const LoggingCostModel> cost)
    : noisy_rank_(noisy_rank), mtbce_(mtbce), cost_(std::move(cost)) {
  CELOG_ASSERT_MSG(noisy_rank_ >= 0, "noisy rank must be a valid rank");
  CELOG_ASSERT_MSG(mtbce_ > 0, "MTBCE must be positive");
  CELOG_ASSERT_MSG(cost_ != nullptr, "cost model required");
}

std::unique_ptr<DetourSource> SingleRankCeNoiseModel::make_source(
    RankId rank, std::uint64_t run_seed) const {
  if (rank != noisy_rank_) return std::make_unique<NullDetourSource>();
  return std::make_unique<PoissonDetourSource>(
      mtbce_, *cost_,
      Xoshiro256::for_stream(run_seed, static_cast<std::uint64_t>(rank)));
}

bool SingleRankCeNoiseModel::reseed_source(DetourSource& source, RankId rank,
                                           std::uint64_t run_seed) const {
  if (rank != noisy_rank_) {
    return dynamic_cast<NullDetourSource*>(&source) != nullptr;
  }
  auto* poisson = dynamic_cast<PoissonDetourSource*>(&source);
  if (poisson == nullptr || !poisson->emits(mtbce_, *cost_)) return false;
  poisson->reseed(
      Xoshiro256::for_stream(run_seed, static_cast<std::uint64_t>(rank)));
  return true;
}

TraceReplayNoiseModel::TraceReplayNoiseModel(std::vector<Detour> trace,
                                             TimeNs window,
                                             bool rotate_per_rank)
    : trace_(std::move(trace)), window_(window), rotate_(rotate_per_rank) {
  CELOG_ASSERT_MSG(window_ > 0, "trace window must be positive");
  CELOG_ASSERT_MSG(
      std::is_sorted(trace_.begin(), trace_.end(),
                     [](const Detour& a, const Detour& b) {
                       return a.arrival < b.arrival;
                     }),
      "trace must be sorted by arrival");
  for (const Detour& d : trace_) {
    CELOG_ASSERT_MSG(d.arrival >= 0 && d.arrival < window_,
                     "trace detours must fall inside the window");
  }
}

void TraceReplayNoiseModel::rotate_into(RankId rank, std::uint64_t run_seed,
                                        std::vector<Detour>& out) const {
  // Rotate the trace by a per-(rank, seed) offset inside the window so the
  // machine does not execute detours in lockstep, then shift everything to
  // start at 0. The replayed trace covers one window only; callers simulate
  // runs shorter than the window or accept a quiet tail (documented).
  TimeNs offset = 0;
  if (rotate_ && !trace_.empty()) {
    auto rng = Xoshiro256::for_stream(run_seed,
                                      static_cast<std::uint64_t>(rank));
    offset = static_cast<TimeNs>(
        rng.uniform_below(static_cast<std::uint64_t>(window_)));
  }
  out.clear();
  out.reserve(trace_.size());
  for (const Detour& d : trace_) {
    const TimeNs shifted = (d.arrival + offset) % window_;
    out.push_back(Detour{shifted, d.duration});
  }
  std::sort(out.begin(), out.end(), [](const Detour& a, const Detour& b) {
    return a.arrival < b.arrival;
  });
}

std::unique_ptr<DetourSource> TraceReplayNoiseModel::make_source(
    RankId rank, std::uint64_t run_seed) const {
  std::vector<Detour> rotated;
  rotate_into(rank, run_seed, rotated);
  return std::make_unique<TraceDetourSource>(std::move(rotated));
}

bool TraceReplayNoiseModel::reseed_source(DetourSource& source, RankId rank,
                                          std::uint64_t run_seed) const {
  // Refilling the replay's storage in place (then rewinding) reproduces
  // make_source exactly while reusing the vector's capacity. This is safe
  // even when `source` came from a DIFFERENT TraceReplayNoiseModel: the
  // storage is overwritten wholesale with THIS model's rotated trace.
  auto* replay = dynamic_cast<TraceDetourSource*>(&source);
  if (replay == nullptr) return false;
  rotate_into(rank, run_seed, replay->storage());
  replay->rewind();
  return true;
}

}  // namespace celog::noise
