// bench/engine_microbench — micro-benchmarks of the simulation substrate
// itself: event throughput of the LogGOPS engine (shallow ring traffic and
// the deep-recv-queue matching stress), noisy runs, steady-state sweep
// throughput with run-context reuse, task-graph construction, collective
// expansion, and the noise busy-period arithmetic. These are the knobs
// that decide how large a machine the tool can simulate per wall-second.
//
// Methodology: every scenario runs `--warmup` untimed repetitions (page in
// graphs, warm allocators and caches) and then `--reps` timed ones, and
// reports p50/p95 across the timed reps — a single hot-cache mean hides
// exactly the variance a perf-trajectory file is meant to expose. Results
// append one JSONL record to --json (see perf_json.hpp); --check-floor
// compares throughput metrics against a checked-in floor file and fails
// the process if any regresses by more than 30%.
//
// The deep_recv scenario runs both the production bucketed matcher and the
// retained linear-scan reference (see src/sim/match_table.hpp), checks
// their SimResults are bit-identical, and reports the speedup — this is
// the ISSUE-2 headline number (>=3x at 1k+ ranks with deep recv queues).
#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "perf_json.hpp"
#include "collectives/collectives.hpp"
#include "goal/generative.hpp"
#include "goal/task_graph.hpp"
#include "noise/noise_model.hpp"
#include "noise/rank_noise.hpp"
#include "sim/engine.hpp"
#include "sim/run_context.hpp"
#include "telemetry/collector.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace celog;

// ---------------------------------------------------------------------------
// Graph builders

/// Nearest-neighbor ring exchange: the shallow-queue throughput scenario
/// (at most a couple of outstanding messages per rank at any time).
goal::TaskGraph ring_graph(goal::Rank ranks, int iters) {
  goal::TaskGraph g(ranks);
  std::vector<goal::SequentialBuilder> b;
  b.reserve(static_cast<std::size_t>(ranks));
  for (goal::Rank r = 0; r < ranks; ++r) b.emplace_back(g, r);
  for (int it = 0; it < iters; ++it) {
    for (goal::Rank r = 0; r < ranks; ++r) {
      b[static_cast<std::size_t>(r)].calc(1000);
      b[static_cast<std::size_t>(r)].begin_phase();
      b[static_cast<std::size_t>(r)].send((r + 1) % ranks, 1024, it);
      b[static_cast<std::size_t>(r)].recv((r - 1 + ranks) % ranks, 1024, it);
      b[static_cast<std::size_t>(r)].end_phase();
    }
  }
  g.finalize();
  return g;
}

/// Deep-recv-queue matching stress: every rank posts `depth` nonblocking
/// recvs up front (the miniFE/HPCG halo-phase pattern at scale), computes,
/// then sends to its right neighbor in REVERSE tag order — so each arriving
/// message matches against a posted queue that is still hundreds to
/// thousands of entries deep. A linear-scan matcher degrades to
/// O(depth) per match (O(depth^2) per rank); bucketed matching stays O(1).
goal::TaskGraph deep_recv_graph(goal::Rank ranks, int depth) {
  goal::TaskGraph g(ranks);
  for (goal::Rank r = 0; r < ranks; ++r) {
    goal::SequentialBuilder b(g, r);
    const goal::Rank left = (r - 1 + ranks) % ranks;
    const goal::Rank right = (r + 1) % ranks;
    std::vector<goal::OpId> recvs;
    recvs.reserve(static_cast<std::size_t>(depth));
    for (int d = 0; d < depth; ++d) {
      recvs.push_back(b.detached_recv(left, 64, d));
    }
    b.calc(1000);
    for (int d = depth - 1; d >= 0; --d) b.send(right, 64, d);
    for (const goal::OpId id : recvs) b.join(id);
    b.calc(10);
  }
  g.finalize();
  return g;
}

// ---------------------------------------------------------------------------
// Measurement helpers

/// FNV-1a over the fields that must be bit-identical across matchers and
/// engine refactors; printed and recorded so a perf trajectory doubles as a
/// determinism trail.
std::uint64_t result_checksum(const sim::SimResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<std::uint64_t>(r.makespan));
  mix(r.data_messages);
  mix(r.control_messages);
  mix(static_cast<std::uint64_t>(r.noise_stolen));
  mix(r.detours_charged);
  mix(r.events_processed);
  for (const TimeNs t : r.rank_finish) mix(static_cast<std::uint64_t>(t));
  return h;
}

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
};

Percentiles summarize(const std::vector<double>& samples) {
  return Percentiles{percentile(samples, 0.50), percentile(samples, 0.95)};
}

/// Runs `fn` (returning a per-rep scalar) warmup+reps times and returns
/// p50/p95 over the timed reps.
template <typename Fn>
Percentiles measure(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) static_cast<void>(fn());
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(fn());
  return summarize(samples);
}

struct Context {
  int reps = 3;
  int warmup = 1;
  sim::MatcherKind matcher = sim::MatcherKind::kBucketed;
  bool both_matchers = true;  // deep_recv: also run the reference matcher
  bench::PerfJson* perf = nullptr;
};

void report(const Context& ctx, const std::string& metric,
            const Percentiles& p, const char* unit) {
  std::printf("  %-46s p50 %12.4g %s   p95 %12.4g %s\n", metric.c_str(),
              p.p50, unit, p.p95, unit);
  ctx.perf->metric(metric + ".p50", p.p50);
  ctx.perf->metric(metric + ".p95", p.p95);
}

void report_checksum(const Context& ctx, const std::string& scenario,
                     std::uint64_t checksum) {
  std::printf("  %-46s %016" PRIx64 "\n", (scenario + ".checksum").c_str(),
              checksum);
  // JSON numbers are doubles; record the low 32 bits losslessly (the full
  // value is in the printed output).
  ctx.perf->metric(scenario + ".checksum32",
                   static_cast<double>(checksum & 0xffffffffull));
}

/// Times run_baseline() under `matcher`, returning per-rep events/s.
Percentiles bench_baseline(const Context& ctx, const sim::Simulator& sim,
                           std::uint64_t* checksum) {
  return measure(ctx.warmup, ctx.reps, [&] {
    const bench::WallTimer timer;
    const sim::SimResult r = sim.run_baseline();
    const double wall = timer.seconds();
    if (checksum != nullptr) *checksum = result_checksum(r);
    return static_cast<double>(r.events_processed) / wall;
  });
}

// ---------------------------------------------------------------------------
// Scenarios

void scenario_ring(const Context& ctx, goal::Rank ranks, int iters) {
  const std::string name =
      "ring_r" + std::to_string(ranks) + "_i" + std::to_string(iters);
  std::printf("%s (sweep-throughput scenario)\n", name.c_str());
  const goal::TaskGraph g = ring_graph(ranks, iters);
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());
  sim.set_matcher(ctx.matcher);
  std::uint64_t checksum = 0;
  report(ctx, name + ".events_per_s", bench_baseline(ctx, sim, &checksum),
         "ev/s");
  report_checksum(ctx, name, checksum);
}

void scenario_deep_recv(const Context& ctx, goal::Rank ranks, int depth) {
  const std::string name =
      "deep_recv_r" + std::to_string(ranks) + "_d" + std::to_string(depth);
  std::printf("%s (deep-recv-queue matching scenario)\n", name.c_str());
  const goal::TaskGraph g = deep_recv_graph(ranks, depth);
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());

  sim.set_matcher(sim::MatcherKind::kBucketed);
  const sim::SimResult bucketed_result = sim.run_baseline();
  std::uint64_t checksum = 0;
  const Percentiles bucketed = bench_baseline(ctx, sim, &checksum);
  report(ctx, name + ".bucketed.events_per_s", bucketed, "ev/s");
  report_checksum(ctx, name, checksum);

  if (ctx.both_matchers) {
    sim.set_matcher(sim::MatcherKind::kReference);
    const sim::SimResult reference_result = sim.run_baseline();
    if (result_checksum(reference_result) !=
        result_checksum(bucketed_result)) {
      std::fprintf(stderr,
                   "FATAL: reference and bucketed matchers disagree on %s\n",
                   name.c_str());
      std::exit(1);
    }
    // The reference matcher is O(depth) per match; cap its reps so deep
    // configurations stay measurable in minutes, not hours.
    Context ref_ctx = ctx;
    ref_ctx.reps = std::min(ctx.reps, 2);
    ref_ctx.warmup = 0;  // the identity check above already warmed it
    const Percentiles reference =
        measure(ref_ctx.warmup, ref_ctx.reps, [&] {
          const bench::WallTimer timer;
          const sim::SimResult r = sim.run_baseline();
          return static_cast<double>(r.events_processed) / timer.seconds();
        });
    report(ref_ctx, name + ".reference.events_per_s", reference, "ev/s");
    const double speedup = bucketed.p50 / reference.p50;
    std::printf("  %-46s %12.2fx\n", (name + ".speedup").c_str(), speedup);
    ctx.perf->metric(name + ".speedup", speedup);
  }
}

void scenario_noise(const Context& ctx, goal::Rank ranks) {
  const std::string name = "noise_r" + std::to_string(ranks);
  std::printf("%s (noisy single run)\n", name.c_str());
  const goal::TaskGraph g = ring_graph(ranks, 50);
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());
  sim.set_matcher(ctx.matcher);
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(1)));
  std::uint64_t seed = 0;
  report(ctx, name + ".wall_ms", measure(ctx.warmup, ctx.reps, [&] {
           const bench::WallTimer timer;
           static_cast<void>(sim.run(noise, ++seed));
           return timer.seconds() * 1e3;
         }),
         "ms");
}

/// One-op-per-rank graph: the null-kernel of simulation runs. A run over
/// it is almost pure per-run setup (state build, noise-source creation,
/// queue/pool/table allocation), which is exactly the cost that run-context
/// reuse eliminates — so it bounds the reuse win the way a null-launch
/// bench bounds kernel-launch latency.
goal::TaskGraph calc_graph(goal::Rank ranks) {
  goal::TaskGraph g(ranks);
  for (goal::Rank r = 0; r < ranks; ++r) {
    goal::SequentialBuilder b(g, r);
    b.calc(1000);
  }
  g.finalize();
  return g;
}

/// ISSUE-4 headline scenario: steady-state sweep throughput in runs/s of
/// one (graph, noise) cell, with and without run-context reuse. "reuse"
/// drives every run of a rep through ONE sim::RunContext (the
/// zero-allocation steady state: reset + reseed, no per-run engine or
/// noise-source allocations); "fresh" uses the context-free overload (a
/// throwaway context per run — the pre-context behavior). Both modes fold
/// every SimResult into a running checksum over the SAME seed sequence and
/// must agree bit-for-bit, so the bench doubles as a determinism check of
/// the reuse path. The small config (calc_graph: iters == 0) isolates
/// per-run setup, the regime of figure sweeps running thousands of short
/// cells; the medium ring config shows the same win diluted by real
/// event-loop work.
void scenario_sweep_config(const Context& ctx, const char* label,
                           goal::Rank ranks, int iters, int runs_per_rep) {
  const std::string name = std::string("sweep_") + label + "_r" +
                           std::to_string(ranks) +
                           (iters > 0 ? "_i" + std::to_string(iters)
                                      : std::string("_calc"));
  std::printf("%s (context-reuse runs/s, %d runs per rep)\n", name.c_str(),
              runs_per_rep);
  const goal::TaskGraph g =
      iters > 0 ? ring_graph(ranks, iters) : calc_graph(ranks);
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());
  sim.set_matcher(ctx.matcher);
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(1)));

  // Both modes replay the identical seed sequence (their own counters,
  // stepped identically through warmup + reps), so the folded checksums
  // must match exactly.
  const auto fold = [](std::uint64_t h, std::uint64_t v) {
    return (h ^ v) * 0x100000001b3ull;
  };
  std::uint64_t reuse_hash = 0xcbf29ce484222325ull;
  std::uint64_t fresh_hash = 0xcbf29ce484222325ull;

  sim::RunContext reuse_ctx;
  std::uint64_t reuse_seed = 0;
  const Percentiles reuse = measure(ctx.warmup, ctx.reps, [&] {
    const bench::WallTimer timer;
    for (int i = 0; i < runs_per_rep; ++i) {
      const sim::SimResult r = sim.run(noise, ++reuse_seed, reuse_ctx);
      reuse_hash = fold(reuse_hash, result_checksum(r));
    }
    return runs_per_rep / timer.seconds();
  });

  std::uint64_t fresh_seed = 0;
  const Percentiles fresh = measure(ctx.warmup, ctx.reps, [&] {
    const bench::WallTimer timer;
    for (int i = 0; i < runs_per_rep; ++i) {
      const sim::SimResult r = sim.run(noise, ++fresh_seed);
      fresh_hash = fold(fresh_hash, result_checksum(r));
    }
    return runs_per_rep / timer.seconds();
  });

  if (reuse_hash != fresh_hash) {
    std::fprintf(stderr,
                 "FATAL: context-reuse and fresh-context runs disagree on "
                 "%s (%016" PRIx64 " vs %016" PRIx64 ")\n",
                 name.c_str(), reuse_hash, fresh_hash);
    std::exit(1);
  }
  report(ctx, name + ".reuse.runs_per_s", reuse, "runs/s");
  report(ctx, name + ".fresh.runs_per_s", fresh, "runs/s");
  const double speedup = reuse.p50 / fresh.p50;
  std::printf("  %-46s %12.2fx\n", (name + ".reuse_speedup").c_str(),
              speedup);
  ctx.perf->metric(name + ".reuse_speedup", speedup);
  report_checksum(ctx, name, reuse_hash);
}

/// Fixed configurations so floor metric names stay stable across runs
/// (--ranks deliberately does not apply here).
void scenario_sweep(const Context& ctx) {
  scenario_sweep_config(ctx, "small", 16, 0, 4096);
  scenario_sweep_config(ctx, "medium", 256, 50, 16);
}

/// ISSUE-5 scenario: per-detour cost of an attached telemetry Collector.
/// Runs the same noisy ring config detached (the zero-cost-when-empty
/// contract: no sink, no work) and with a live Collector in summary mode
/// (max_records = 0, the sweep configuration), checks that attaching the
/// sink leaves the SimResult bit-identical, and reports both throughputs
/// plus the overhead in percent.
void scenario_telemetry(const Context& ctx, goal::Rank ranks) {
  const std::string name = "telemetry_r" + std::to_string(ranks);
  std::printf("%s (attached-collector overhead)\n", name.c_str());
  const goal::TaskGraph g = ring_graph(ranks, 50);
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());
  sim.set_matcher(ctx.matcher);
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(1)));

  telemetry::CollectorConfig config;
  config.max_records = 0;
  telemetry::Collector collector(config);
  sim::RunContext context;

  const sim::SimResult detached_result = sim.run(noise, 1, context);
  collector.begin_run(static_cast<std::int32_t>(ranks), 1);
  const sim::SimResult attached_result = sim.run(
      noise, 1, context, noise::RankNoise::kNoHorizon, {}, &collector);
  if (result_checksum(detached_result) != result_checksum(attached_result)) {
    std::fprintf(stderr,
                 "FATAL: attaching a collector changed the SimResult on %s\n",
                 name.c_str());
    std::exit(1);
  }

  std::uint64_t seed = 0;
  const Percentiles detached = measure(ctx.warmup, ctx.reps, [&] {
    const bench::WallTimer timer;
    const sim::SimResult r = sim.run(noise, ++seed, context);
    return static_cast<double>(r.events_processed) / timer.seconds();
  });
  seed = 0;
  const Percentiles attached = measure(ctx.warmup, ctx.reps, [&] {
    ++seed;
    collector.begin_run(static_cast<std::int32_t>(ranks), seed);
    const bench::WallTimer timer;
    const sim::SimResult r = sim.run(noise, seed, context,
                                     noise::RankNoise::kNoHorizon, {},
                                     &collector);
    return static_cast<double>(r.events_processed) / timer.seconds();
  });
  report(ctx, name + ".detached.events_per_s", detached, "ev/s");
  report(ctx, name + ".attached.events_per_s", attached, "ev/s");
  const double overhead_pct = 100.0 * (detached.p50 / attached.p50 - 1.0);
  std::printf("  %-46s %12.2f%%\n", (name + ".attached_overhead_pct").c_str(),
              overhead_pct);
  ctx.perf->metric(name + ".attached_overhead_pct", overhead_pct);
  report_checksum(ctx, name, result_checksum(detached_result));
}

void scenario_graph_build(const Context& ctx, goal::Rank ranks) {
  const std::string name = "graph_build_lulesh_r" + std::to_string(ranks);
  std::printf("%s (task-graph construction)\n", name.c_str());
  const auto workload = workloads::find_workload("lulesh");
  workloads::WorkloadConfig config;
  config.ranks = ranks;
  config.iterations = 10;
  report(ctx, name + ".wall_ms", measure(ctx.warmup, ctx.reps, [&] {
           const bench::WallTimer timer;
           const goal::TaskGraph g = workload->build(config);
           static_cast<void>(g.total_ops());
           return timer.seconds() * 1e3;
         }),
         "ms");
}

void scenario_allreduce(const Context& ctx, goal::Rank ranks) {
  const std::string name = "allreduce_r" + std::to_string(ranks);
  std::printf("%s (collective expansion)\n", name.c_str());
  report(ctx, name + ".wall_ms", measure(ctx.warmup, ctx.reps, [&] {
           const bench::WallTimer timer;
           goal::TaskGraph g(ranks);
           std::vector<goal::SequentialBuilder> b;
           b.reserve(static_cast<std::size_t>(ranks));
           for (goal::Rank r = 0; r < ranks; ++r) b.emplace_back(g, r);
           collectives::TagAllocator tags;
           collectives::allreduce({b.data(), b.size()}, 8, tags);
           g.finalize();
           static_cast<void>(g.total_ops());
           return timer.seconds() * 1e3;
         }),
         "ms");
}

/// ISSUE-7 headline scenario: exascale-shaped runs over the generative
/// (lazy) graph representation. A 3-D periodic stencil at 10K / 100K ranks
/// never materializes its task graph — programs are decoded per-op from
/// O(1) pattern parameters — and the engine's state is O(active ranks)
/// with capped event reservations, so the figure of merit is twofold:
/// event throughput at scale (events_per_s) and the per-rank memory
/// footprint, reported both as bytes_per_rank (graph + engine state over
/// ranks; informational) and as its bigger-is-better inverse ranks_per_mib
/// (floor-gated: a memory regression makes it drop).
void scenario_scale_graph(const Context& ctx, const std::string& name,
                          const char* what, const goal::GenerativeGraph& g) {
  std::printf("%s (generative %d-rank %s, %zu ops)\n", name.c_str(),
              g.ranks(), what, g.total_ops());
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());
  sim.set_matcher(ctx.matcher);
  sim::RunContext context;
  std::uint64_t checksum = 0;
  report(ctx, name + ".events_per_s", measure(ctx.warmup, ctx.reps, [&] {
           const bench::WallTimer timer;
           const sim::SimResult r = sim.run_baseline(context);
           const double wall = timer.seconds();
           checksum = result_checksum(r);
           return static_cast<double>(r.events_processed) / wall;
         }),
         "ev/s");

  const double resident = static_cast<double>(context.resident_bytes()) +
                          static_cast<double>(g.resident_bytes());
  const double ranks = static_cast<double>(g.ranks());
  const double bytes_per_rank = resident / ranks;
  const double ranks_per_mib = ranks / (resident / (1024.0 * 1024.0));
  std::printf("  %-46s %12.1f B\n", (name + ".bytes_per_rank").c_str(),
              bytes_per_rank);
  ctx.perf->metric(name + ".bytes_per_rank", bytes_per_rank);
  std::printf("  %-46s %12.1f ranks/MiB\n", (name + ".ranks_per_mib").c_str(),
              ranks_per_mib);
  ctx.perf->metric(name + ".ranks_per_mib", ranks_per_mib);
  report_checksum(ctx, name, checksum);
}

void scenario_scale_stencil(const Context& ctx, const char* label,
                            std::vector<goal::Rank> dims, int iters) {
  goal::StencilSpec spec;
  spec.dims = std::move(dims);
  spec.iterations = iters;
  spec.message_bytes = 1024;
  spec.compute_ns = 2000;
  spec.jitter_ns = 500;
  spec.seed = 1;
  const goal::GenerativeGraph g(spec);
  scenario_scale_graph(ctx, std::string("scale_") + label, "stencil", g);
}

/// The same figure of merit over a real workload pattern: LULESH's
/// generative twin (two 26-neighbor halos, three imbalanced compute
/// phases, two allreduces per iteration) decoded rather than materialized.
/// Exercises the full-links halo decode and the collective-tree arithmetic
/// the stencil shape never touches.
void scenario_scale_workload(const Context& ctx, const char* label,
                             goal::Rank ranks, int iters) {
  const auto workload = workloads::find_workload("lulesh");
  workloads::WorkloadConfig config;
  config.ranks = ranks;
  config.trace_block = 0;
  config.iterations = iters;
  config.seed = 1;
  const auto g = workload->build_generative(config);
  scenario_scale_graph(ctx, std::string("scale_lulesh_") + label, "lulesh",
                       *g);
}

/// Fixed shapes so floor metric names stay stable: 10K = 20 x 25 x 20,
/// 100K = 50 x 50 x 40; the LULESH cells run the whole machine as one
/// block at the same rank counts. The smoke preset runs only the 10K
/// shapes.
void scenario_scale(const Context& ctx, bool smoke) {
  scenario_scale_stencil(ctx, "10k", {20, 25, 20}, 10);
  scenario_scale_workload(ctx, "10k", 10000, 2);
  if (!smoke) {
    scenario_scale_stencil(ctx, "100k", {50, 50, 40}, 10);
    scenario_scale_workload(ctx, "100k", 100000, 2);
  }
}

void scenario_rank_noise(const Context& ctx) {
  const std::string name = "rank_noise";
  std::printf("%s (busy-period arithmetic)\n", name.c_str());
  constexpr int kIntervals = 10000;
  report(ctx, name + ".ns_per_interval",
         measure(ctx.warmup, ctx.reps, [&] {
           const noise::FlatLoggingCost cost(microseconds(1));
           noise::RankNoise rn(std::make_unique<noise::PoissonDetourSource>(
               microseconds(100), cost, Xoshiro256(1)));
           const bench::WallTimer timer;
           TimeNs t = 0;
           for (int i = 0; i < kIntervals; ++i) {
             t = rn.next_free(t);
             t = rn.occupy(t, 50000);
           }
           static_cast<void>(t);
           return timer.seconds() * 1e9 / kIntervals;
         }),
         "ns");
}

// ---------------------------------------------------------------------------
// Floor checking

/// Reads a flat {"metric": value, ...} JSON file of throughput floors.
/// Deliberately minimal: accepts exactly the format perf_floor.json uses.
std::vector<std::pair<std::string, double>> read_floors(
    const std::string& path) {
  std::vector<std::pair<std::string, double>> floors;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open floor file %s\n", path.c_str());
    std::exit(1);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    while (pos < text.size() && std::isspace(text[pos]) != 0) ++pos;
    if (pos >= text.size() || text[pos] != ':') continue;  // not a key
    ++pos;
    while (pos < text.size() && std::isspace(text[pos]) != 0) ++pos;
    if (pos < text.size() && text[pos] == '"') {
      // String value (e.g. a "_comment" entry): skip it, it is not a floor.
      pos = text.find('"', pos + 1);
      if (pos == std::string::npos) break;
      ++pos;
      continue;
    }
    double value = 0.0;
    if (std::sscanf(text.c_str() + pos, "%lf", &value) == 1) {
      floors.emplace_back(key, value);
    }
  }
  return floors;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "Micro-benchmarks of the simulation substrate: engine event "
      "throughput (ring + deep-recv matching), noisy runs, steady-state "
      "sweep throughput with run-context reuse, graph construction, "
      "collective expansion, and noise arithmetic. Reports p50/p95 across "
      "--reps repetitions after --warmup untimed ones.");
  cli.add_option("scenario", "all",
                 "comma-separated subset of: ring, deep_recv, noise, sweep, "
                 "scale, "
                 "telemetry, graph_build, allreduce, rank_noise (or 'all')");
  cli.add_option("reps", "3", "timed repetitions per scenario");
  cli.add_option("warmup", "1", "untimed warmup repetitions per scenario");
  cli.add_option("ranks", "0",
                 "rank count override (0 = per-scenario default)");
  cli.add_option("depth", "2048", "posted-recv queue depth for deep_recv");
  cli.add_option("matcher", "both",
                 "bucketed | reference | both (deep_recv always measures "
                 "bucketed; 'both' adds the reference run and speedup)");
  cli.add_option("json", "",
                 "append a perf-trajectory JSONL record to this file");
  cli.add_option("check-floor", "",
                 "flat JSON file of throughput floors; exit 1 if any "
                 "recorded metric falls >30% below its floor");
  cli.add_flag("smoke", "CI preset: small sizes (ring r128, deep r256xd256) "
               "and scenario=ring,deep_recv,sweep,scale,telemetry unless "
               "overridden");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 1;

  const bool smoke = cli.get_flag("smoke");
  std::string scenarios = cli.get("scenario");
  if (smoke && !cli.provided("scenario")) {
    scenarios = "ring,deep_recv,sweep,scale,telemetry";
  }
  const auto has = [&scenarios](const char* name) {
    return scenarios == "all" ||
           scenarios.find(name) != std::string::npos;
  };

  bench::PerfJson perf(cli.get("json"), "engine_microbench");
  Context ctx;
  ctx.reps = static_cast<int>(cli.get_int("reps"));
  ctx.warmup = static_cast<int>(cli.get_int("warmup"));
  ctx.perf = &perf;
  const std::string matcher = cli.get("matcher");
  ctx.matcher = matcher == "reference" ? sim::MatcherKind::kReference
                                       : sim::MatcherKind::kBucketed;
  ctx.both_matchers = matcher == "both";

  const auto ranks_or = [&cli, smoke](goal::Rank dflt,
                                      goal::Rank smoke_dflt) {
    const auto r = static_cast<goal::Rank>(cli.get_int("ranks"));
    if (r > 0) return r;
    return smoke ? smoke_dflt : dflt;
  };
  const int depth = smoke && !cli.provided("depth")
                        ? 256
                        : static_cast<int>(cli.get_int("depth"));

  std::printf("== engine_microbench (reps=%d warmup=%d) ==\n", ctx.reps,
              ctx.warmup);
  if (has("ring")) scenario_ring(ctx, ranks_or(256, 128), 50);
  if (has("deep_recv")) scenario_deep_recv(ctx, ranks_or(1024, 256), depth);
  if (has("noise")) scenario_noise(ctx, ranks_or(256, 128));
  if (has("sweep")) scenario_sweep(ctx);
  if (has("scale")) scenario_scale(ctx, smoke);
  if (has("telemetry")) scenario_telemetry(ctx, ranks_or(256, 128));
  if (has("graph_build")) scenario_graph_build(ctx, ranks_or(512, 64));
  if (has("allreduce")) scenario_allreduce(ctx, ranks_or(4096, 256));
  if (has("rank_noise")) scenario_rank_noise(ctx);

  const std::string floor_path = cli.get("check-floor");
  if (!floor_path.empty()) {
    int failures = 0;
    for (const auto& [key, floor] : read_floors(floor_path)) {
      const double measured = perf.lookup(key);
      if (measured < 0.0) {
        std::printf("floor  %-46s SKIP (metric not recorded)\n", key.c_str());
        continue;
      }
      const bool ok = measured >= 0.7 * floor;
      std::printf("floor  %-46s %.4g vs floor %.4g  %s\n", key.c_str(),
                  measured, floor, ok ? "OK" : "FAIL (>30% regression)");
      if (!ok) ++failures;
    }
    if (failures > 0) return 1;
  }
  return 0;
}
