#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "util/error.hpp"

namespace celog::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) {
    // close(2) must not be retried on EINTR (POSIX leaves the fd state
    // unspecified; on Linux it is already closed); one call either way.
    ::close(fd_);
  }
  fd_ = fd;
}

std::ptrdiff_t read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0) return r;
    if (errno != EINTR) return -1;
  }
}

std::ptrdiff_t write_some(int fd, const void* buf, std::size_t n) {
  for (;;) {
    // MSG_NOSIGNAL turns a dead peer into EPIPE-the-errno instead of
    // SIGPIPE-the-process-killer; on non-sockets (the self-pipe) send
    // fails ENOTSOCK and plain write is safe because pipes only raise
    // SIGPIPE when the read end is closed — which for an owned self-pipe
    // cannot happen while the daemon runs.
    ssize_t r = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) r = ::write(fd, buf, n);
    if (r >= 0) return r;
    if (errno != EINTR) return -1;
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::ptrdiff_t r =
        write_some(fd, data.data() + off, data.size() - off);
    if (r < 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

ScopedFd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen(" + path + ")");
  return fd;
}

ScopedFd listen_tcp(std::uint16_t port, int backlog,
                    std::uint16_t* bound_port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen(tcp)");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

ScopedFd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

ScopedFd connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("not an IPv4 address: " + host);
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

std::pair<ScopedFd, ScopedFd> make_wake_pipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  ScopedFd r(fds[0]);
  ScopedFd w(fds[1]);
  set_nonblocking(r.get());
  set_nonblocking(w.get());
  return {std::move(r), std::move(w)};
}

bool LineReader::read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      out.assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return true;
    }
    char chunk[4096];
    const std::ptrdiff_t n = read_some(fd_, chunk, sizeof(chunk));
    if (n < 0) throw Error(std::string("read: ") + std::strerror(errno));
    if (n == 0) {
      if (pos_ < buf_.size()) {
        out.assign(buf_, pos_, buf_.size() - pos_);
        buf_.clear();
        pos_ = 0;
        return true;
      }
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace celog::util
