// celog/server/runner_registry.hpp
//
// The daemon-side graph/baseline cache: one core::ExperimentRunner per
// distinct (workload, ranks, iterations, matcher) a sweep request can
// resolve to. Graph construction and the baseline run are the expensive
// parts of serving a request — every request that shares them must share
// one runner, both for latency and because each runner carries the warm
// RunContext free list and leased sweep pools (see DESIGN.md, "Run-context
// reuse") that make steady-state serving allocation-free.
//
// Concurrency: get() is called from daemon worker threads. The map is
// mutex-guarded and each entry carries a build latch (std::once_flag), so
// two requests needing the same graph wait on one build instead of
// duplicating it — the same discipline as the bench RunnerCache. Entries
// are handed out as shared_ptr, so an entry evicted while a request is
// mid-sweep stays alive until that request completes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/experiment.hpp"
#include "server/protocol.hpp"
#include "workloads/workload.hpp"

namespace celog::server {

class RunnerRegistry {
 public:
  /// `max_entries` bounds resident runners; admitting a new key beyond it
  /// evicts the map's first fully built entry (in-flight users keep their
  /// shared_ptr until done).
  explicit RunnerRegistry(std::size_t max_entries = 32);

  /// The runner serving `req`, built on first use. Throws
  /// celog::InvalidInputError for an unknown workload name.
  std::shared_ptr<const core::ExperimentRunner> get(const SweepRequest& req);

  /// THE batch-equivalence seam: the exact WorkloadConfig the daemon
  /// builds for (workload, ranks, sim_s). A batch ExperimentRunner built
  /// from this config must produce results byte-identical (via the
  /// protocol serializers) to the daemon's response for the same request —
  /// the serve tests construct their expectations through it.
  static workloads::WorkloadConfig config_for(const workloads::Workload& w,
                                              goal::Rank ranks, double sim_s);

  /// Cache key for `req` (exposed for tests; iterations are derived, so
  /// distinct sim-s values can legitimately share one runner).
  static std::string key_for(const SweepRequest& req);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t builds = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::once_flag build_latch;
    std::shared_ptr<const core::ExperimentRunner> runner;
  };

  const std::size_t max_entries_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> cache_;
  Stats stats_;
};

}  // namespace celog::server
