file(REMOVE_RECURSE
  "CMakeFiles/noise_model_test.dir/noise_model_test.cpp.o"
  "CMakeFiles/noise_model_test.dir/noise_model_test.cpp.o.d"
  "noise_model_test"
  "noise_model_test.pdb"
  "noise_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
