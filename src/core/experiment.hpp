// celog/core/experiment.hpp
//
// The experiment driver: builds a workload's task graph once, runs the
// noise-free baseline, then measures mean slowdown over seeded noisy runs —
// the procedure behind every figure in §IV ("the height of each bar
// represents the arithmetic mean of at least eight simulations").
//
// Scale policy (see DESIGN.md): simulating the paper's 16,384 nodes for
// every cell is too expensive for a laptop-class machine, so experiments
// support a rate-preserving reduction: simulate `ranks` nodes and divide
// the MTBCE by (paper_nodes / ranks). This keeps the machine-wide CE rate —
// and the regime parameter p*lambda*tau that governs noise amplification —
// exactly equal to the full-scale system, so slowdown orderings and
// crossovers are preserved; per-rank absorption is slightly overstated at
// strong reductions (quantified in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/system_config.hpp"
#include "goal/generative.hpp"
#include "goal/task_graph.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workloads/workload.hpp"

namespace celog::core {

/// Rate-preserving reduction of a paper-scale system onto `max_ranks`
/// simulated ranks.
struct ScaledSystem {
  goal::Rank ranks = 0;
  /// Divide the per-node MTBCE by this to keep the machine-wide rate.
  double mtbce_divisor = 1.0;
};

/// Chooses simulated ranks = min(paper_nodes, max_ranks) and the matching
/// MTBCE divisor (paper_nodes / ranks).
ScaledSystem scale_system(std::int64_t paper_nodes, goal::Rank max_ranks);

/// Applies a ScaledSystem to a system's MTBCE.
TimeNs scaled_mtbce(const SystemConfig& system, const ScaledSystem& scale);

/// Trace-block size for `workload` under `scale`.
///
/// The paper simulates traces collected at workload.trace_ranks() processes
/// and extrapolated by block replication, so at full scale the machine is
/// (nodes / trace_ranks) islands whose point-to-point traffic never crosses
/// island boundaries; only collectives couple them. The rate-preserving
/// reduction must keep BOTH the machine-wide CE rate and that island
/// structure: shrinking the block by the same factor as the MTBCE keeps the
/// island count and the per-island CE rate equal to the full-scale system.
goal::Rank scaled_trace_block(const workloads::Workload& workload,
                              const ScaledSystem& scale);

/// Slowdown measurement across seeds. When some (but not all) seeds blow
/// the horizon, the statistics cover the seeds that completed — a partial
/// measurement flagged by no_progress, never a silent zero.
struct SlowdownResult {
  double mean_pct = 0.0;
  double stderr_pct = 0.0;
  double min_pct = 0.0;
  double max_pct = 0.0;
  /// Number of seeds that completed and contribute to the statistics above
  /// (equals the requested seed count when no_progress is false).
  int seeds = 0;
  TimeNs baseline_makespan = 0;
  /// Mean number of detours that extended application activity per run.
  double mean_detours = 0.0;
  /// Mean CPU time stolen per run across the whole machine.
  double mean_stolen_s = 0.0;
  /// True when at least one run blew through the simulation horizon: CE
  /// handling outpaced the CPU, the paper's "unable to make forward
  /// progress" case (its figures omit these points; benches print
  /// "no-progress"). Every seed is still attempted, so `seeds` and the
  /// statistics reflect the runs that did complete.
  bool no_progress = false;
};

/// Which graph representation an ExperimentRunner builds and simulates.
/// kGenerative asks the workload for its lazy slot-program twin
/// (Workload::build_generative) and falls back to materialization when the
/// model has none — callers can request generative unconditionally.
enum class GraphRep : std::uint8_t { kMaterialized, kGenerative };

/// Builds a workload graph once and evaluates noise models against it.
/// The graph build (the expensive part at scale) is shared by the baseline
/// and every seeded noisy run.
class ExperimentRunner {
 public:
  /// `matcher` selects the engine's message-matching implementation for
  /// the baseline and every noisy run (results are bit-identical either
  /// way; kReference exists for differential testing — and for served
  /// requests that ask to cross-check the production matcher).
  ExperimentRunner(const workloads::Workload& workload,
                   const workloads::WorkloadConfig& config,
                   sim::NetworkParams net = sim::NetworkParams::cray_xc40(),
                   sim::MatcherKind matcher = sim::MatcherKind::kBucketed,
                   GraphRep rep = GraphRep::kMaterialized);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  const sim::SimResult& baseline() const { return baseline_; }

  /// True when this runner simulates the generative representation (the
  /// requested rep was kGenerative AND the workload had a generative twin).
  bool generative() const { return gen_.has_value(); }

  /// The materialized task graph; only valid when !generative().
  const goal::TaskGraph& graph() const {
    CELOG_ASSERT_MSG(graph_.has_value(),
                     "graph() on a generative runner; use generative_graph()");
    return *graph_;
  }

  /// The generative pattern graph; only valid when generative().
  const goal::GenerativeGraph& generative_graph() const {
    CELOG_ASSERT_MSG(gen_.has_value(),
                     "generative_graph() on a materialized runner");
    return *gen_;
  }

  /// Resident footprint of whichever graph representation this runner
  /// holds — what a memory budget (celogd's RunnerRegistry) should charge.
  /// KBs for generative runners at any rank count, O(total ops) otherwise.
  std::size_t graph_resident_bytes() const {
    return gen_ ? gen_->resident_bytes() : graph_->resident_bytes();
  }

  /// Mean slowdown of `noise` over `seeds` runs (seeds base_seed,
  /// base_seed+1, ...). Each run is bounded by `horizon_factor` x the
  /// baseline makespan; runs that exceed it flag the result no_progress
  /// instead of throwing, and every seed is attempted regardless.
  ///
  /// `jobs` > 1 fans the seeds out across that many threads: Simulator::run
  /// is const over the shared immutable graph, each seed's outcome is
  /// gathered into its index slot, and the reduction walks the slots in
  /// seed order — so the result is bit-identical to jobs = 1 for any job
  /// count (see DESIGN.md, "Parallel sweep substrate").
  ///
  /// Steady-state sweeps reuse everything: the runner keeps a small cache
  /// of idle ThreadPools (leased one per in-flight sweep, matched on the
  /// effective job count)
  /// and a free list of sim::RunContexts — one leased per worker slot per
  /// sweep — so repeated measure() calls on one runner allocate nothing
  /// per run (see DESIGN.md, "Run-context reuse"). Concurrent measure()
  /// calls on the same runner (bench tables share runners through
  /// RunnerCache; celogd shares them through RunnerRegistry) each lease
  /// their own pool from a small idle cache — no serialization and no
  /// throwaway per-call pools under contention — and contexts are never
  /// shared between in-flight runs.
  SlowdownResult measure(const noise::NoiseModel& noise, int seeds,
                         std::uint64_t base_seed = 1000,
                         double horizon_factor = 100.0, int jobs = 1) const;

  /// Single noisy run (exposed for tests and ablations).
  sim::SimResult run_once(const noise::NoiseModel& noise,
                          std::uint64_t seed) const;

  /// Single noisy run bounded by `horizon_factor` x the baseline makespan —
  /// the same horizon arithmetic as measure(). Throws NoProgressError when
  /// the run blows through it. Unbounded run_once is wrong for untrusted
  /// inputs: in the paper's no-progress regime (CE handling outpaces the
  /// CPU) the simulation never terminates, so a served streamed run must
  /// carry a horizon.
  sim::SimResult run_once(const noise::NoiseModel& noise, std::uint64_t seed,
                          double horizon_factor) const;

  /// Single noisy run with a CE telemetry sink attached (e.g. a
  /// telemetry::Collector): the sink observes every consumed detour, and
  /// the SimResult is bit-identical to the sink-free overload. The run
  /// still goes through the persistent context free list, so telemetry
  /// sweeps stay allocation-free in steady state.
  sim::SimResult run_once(const noise::NoiseModel& noise, std::uint64_t seed,
                          noise::DetourSink* ce_sink) const;

  /// Horizon-bounded run with a sink attached — the campaign path
  /// (fleetdb::CampaignRunner): a fleet epoch must both observe its CE
  /// stream and survive a storm-heavy cell without simulating forever.
  /// Throws NoProgressError exactly like the sink-free horizon overload.
  sim::SimResult run_once(const noise::NoiseModel& noise, std::uint64_t seed,
                          double horizon_factor,
                          noise::DetourSink* ce_sink) const;

 private:
  /// Persistent sweep machinery (pool + context free list); defined in
  /// experiment.cpp. Mutated through const methods behind its own locks —
  /// a cache, not observable state.
  struct SweepState;

  // Exactly one of graph_/gen_ holds a value; simulator_ borrows it and is
  // engaged immediately after in the constructor.
  std::optional<goal::TaskGraph> graph_;
  std::optional<goal::GenerativeGraph> gen_;
  std::optional<sim::Simulator> simulator_;
  sim::SimResult baseline_;
  std::unique_ptr<SweepState> sweep_;
};

}  // namespace celog::core
