// tools/celint/taint.cpp
//
// Pass 2, determinism-taint family: joins per-file dataflow facts into a
// project-wide fixpoint. Sources are pointer->integer casts ("T" markers
// injected by pass 1) and the direct findings (pointer-keyed ordered
// containers, std::hash<T*>). Taint propagates through assignments
// (v:/m: names, file-local) and call-return edges (f:/c: names, global by
// bare function name — approximate, like the rest of celint), and a
// finding fires when a tainted value reaches a *Result field, a perf-JSON
// writer call, or an ordered container's key position. Findings are
// scoped to src/ — benches and tools may hash pointers for their own
// bookkeeping; the determinism contract covers the library.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "celint.hpp"
#include "flow.hpp"
#include "lex.hpp"

namespace celint::flow {

namespace {

using lex::starts_with;

bool suppressed(const FileFacts& f, int line, const std::string& rule) {
  const auto it = f.allowed.find(line);
  return it != f.allowed.end() && it->second.count(rule) != 0;
}

}  // namespace

std::vector<Finding> taint_findings(const std::vector<FileFacts>& all) {
  std::set<std::string> result_fields;
  for (const auto& f : all) {
    for (const auto& r : f.result_fields) result_fields.insert(r);
  }
  // Fixpoint state: tainted function returns (global, by name) and
  // tainted value names per file (v:/m: namespace is file-local).
  std::set<std::string> tainted_fns;
  std::map<const FileFacts*, std::set<std::string>> local;
  const auto rhs_tainted = [&](const FileFacts& f,
                               const std::vector<std::string>& rhs) {
    const auto lit = local.find(&f);
    for (const auto& r : rhs) {
      if (r == "T") return true;
      if (starts_with(r, "c:") && tainted_fns.count(r.substr(2)) != 0) {
        return true;
      }
      if ((starts_with(r, "v:") || starts_with(r, "m:")) &&
          lit != local.end() && lit->second.count(r) != 0) {
        return true;
      }
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& f : all) {
      for (const auto& fl : f.flows) {
        if (!rhs_tainted(f, fl.rhs)) continue;
        if (starts_with(fl.lhs, "f:")) {
          changed = tainted_fns.insert(fl.lhs.substr(2)).second || changed;
        } else if (!fl.lhs.empty()) {
          changed = local[&f].insert(fl.lhs).second || changed;
        }
      }
    }
  }
  std::vector<Finding> out;
  for (const auto& f : all) {
    if (!f.in_src) continue;
    for (const auto& d : f.taint_direct) {
      if (suppressed(f, d.line, d.rule)) continue;
      Finding g = d;
      g.file = f.path;
      out.push_back(std::move(g));
    }
    for (const auto& fl : f.flows) {
      if (!starts_with(fl.lhs, "m:")) continue;
      const std::string field = fl.lhs.substr(2);
      if (result_fields.count(field) == 0) continue;
      if (!rhs_tainted(f, fl.rhs)) continue;
      if (suppressed(f, fl.line, "det-taint")) continue;
      out.push_back(
          {f.path, fl.line, "det-taint",
           "value derived from a pointer address flows into result field '" +
               field +
               "': addresses vary across runs and break bit-identical "
               "SimResults"});
    }
    for (const auto& sk : f.sinks) {
      if (!rhs_tainted(f, sk.rhs)) continue;
      if (suppressed(f, sk.line, "det-taint")) continue;
      std::string msg;
      if (sk.kind == "perf-json") {
        msg = "pointer-derived value reaches the perf-JSON writer (." +
              sk.detail +
              "()): perf records must be address-free to stay byte-stable "
              "across runs";
      } else {
        msg = "pointer-derived key used with ordered container '" +
              sk.detail +
              "': iteration order would depend on addresses and leak into "
              "results";
      }
      out.push_back({f.path, sk.line, "det-taint", std::move(msg)});
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace celint::flow
