// Tests for the core experiment layer: Table II system parameters, logging
// modes, scale policy, and the experiment runner.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/logging_mode.hpp"
#include "core/system_config.hpp"
#include "noise/noise_model.hpp"
#include "workloads/workload.hpp"

#include <memory>

namespace celog::core {
namespace {

TEST(SystemConfigTest, CieloMatchesTableTwo) {
  const SystemConfig c = systems::cielo();
  EXPECT_DOUBLE_EQ(c.ces_per_node_year, 26.35);
  EXPECT_DOUBLE_EQ(c.gib_per_node, 32.0);
  EXPECT_NEAR(c.derived_ces_per_node_year(), 26.24, 0.2);
  // Table II: MTBCE ~ 1.2e6 s.
  EXPECT_NEAR(c.mtbce_node_seconds(), 1.2e6, 0.01e6);
  EXPECT_EQ(c.nodes, 8894);
  EXPECT_EQ(c.simulated_nodes, 8192);
}

TEST(SystemConfigTest, GoogleAndFacebookRates) {
  EXPECT_DOUBLE_EQ(systems::google().ces_per_gib_year, 11384.0);
  EXPECT_DOUBLE_EQ(systems::google().ces_per_node_year, 22696.0);
  EXPECT_DOUBLE_EQ(systems::facebook().ces_per_node_year, 5964.0);
  // Table II: Google MTBCE ~ 1368 s, Facebook ~ 5292 s.
  EXPECT_NEAR(systems::google().mtbce_node_seconds(), 1368.0, 25.0);
  EXPECT_NEAR(systems::facebook().mtbce_node_seconds(), 5292.0, 25.0);
}

TEST(SystemConfigTest, ExascaleMultipliersScaleRate) {
  const SystemConfig x1 = systems::exascale_cielo(1.0);
  const SystemConfig x10 = systems::exascale_cielo(10.0);
  const SystemConfig x100 = systems::exascale_cielo(100.0);
  EXPECT_DOUBLE_EQ(x1.ces_per_node_year, 574.0);
  EXPECT_DOUBLE_EQ(x10.ces_per_node_year, 5740.0);
  EXPECT_DOUBLE_EQ(x100.ces_per_node_year, 57400.0);
  // Table II: x100 -> MTBCE 554.4 s (approximately, by year convention).
  EXPECT_NEAR(x100.mtbce_node_seconds(), 554.4, 10.0);
  EXPECT_NEAR(x10.mtbce_node_seconds() / x100.mtbce_node_seconds(), 10.0,
              1e-9);
  EXPECT_EQ(x1.nodes, 16384);
  EXPECT_DOUBLE_EQ(x1.gib_per_node, 700.0);
}

TEST(SystemConfigTest, FacebookMedianExascale) {
  const SystemConfig fb = systems::exascale_facebook_median();
  EXPECT_DOUBLE_EQ(fb.ces_per_node_year, 75600.0);
  // Table II: 432 s (we derive ~417 s from a 365-day year; the paper's
  // value implies a slightly longer year — see DESIGN.md).
  EXPECT_NEAR(fb.mtbce_node_seconds(), 420.0, 15.0);
  // ~120x the Cielo density.
  EXPECT_NEAR(fb.ces_per_gib_year / systems::cielo().ces_per_gib_year, 131.7,
              1.0);
}

TEST(SystemConfigTest, TrinitySummitKeepStatedValues) {
  EXPECT_DOUBLE_EQ(systems::trinity().ces_per_node_year, 89.6);
  EXPECT_NEAR(systems::trinity().derived_ces_per_node_year(), 105.0, 0.5);
  EXPECT_DOUBLE_EQ(systems::summit().ces_per_node_year, 425.6);
  EXPECT_EQ(systems::summit().simulated_nodes, 4096);
}

TEST(SystemConfigTest, TableTwoRowOrder) {
  const auto rows = systems::table2();
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].name, "Google");
  EXPECT_EQ(rows[1].name, "Facebook");
  EXPECT_EQ(rows[2].name, "Cielo");
  EXPECT_EQ(rows[9].name, "Exascale (CE_median(Facebook))");
}

TEST(SystemConfigTest, MtbceOrderingAcrossSystems) {
  // More CEs per node per year -> smaller MTBCE, monotonically.
  const auto rows = systems::table2();
  for (const auto& row : rows) {
    EXPECT_GT(row.mtbce_node(), 0) << row.name;
  }
  EXPECT_GT(systems::cielo().mtbce_node(), systems::trinity().mtbce_node());
  EXPECT_GT(systems::trinity().mtbce_node(), systems::summit().mtbce_node());
  EXPECT_GT(systems::summit().mtbce_node(),
            systems::exascale_cielo(10.0).mtbce_node());
}

TEST(LoggingModeTest, CostsMatchFigureCaptions) {
  EXPECT_EQ(cost_of(LoggingMode::kHardwareOnly), 150);
  EXPECT_EQ(cost_of(LoggingMode::kSoftware), microseconds(775));
  EXPECT_EQ(cost_of(LoggingMode::kFirmware), milliseconds(133));
  EXPECT_EQ(all_logging_modes().size(), 3u);
  EXPECT_STREQ(to_string(LoggingMode::kFirmware), "firmware");
}

TEST(LoggingModeTest, CostModelsWrapConstants) {
  for (const auto mode : all_logging_modes()) {
    const auto model = cost_model(mode);
    EXPECT_EQ(model->cost_of_event(0), cost_of(mode));
    EXPECT_EQ(model->cost_of_event(99), cost_of(mode));
  }
}

TEST(ScaleSystemTest, NoReductionBelowCap) {
  const ScaledSystem s = scale_system(128, 512);
  EXPECT_EQ(s.ranks, 128);
  EXPECT_DOUBLE_EQ(s.mtbce_divisor, 1.0);
}

TEST(ScaleSystemTest, RatePreservingReduction) {
  const ScaledSystem s = scale_system(16384, 512);
  EXPECT_EQ(s.ranks, 512);
  EXPECT_DOUBLE_EQ(s.mtbce_divisor, 32.0);
  // Machine-wide rate is preserved: ranks / mtbce == nodes / MTBCE.
  const SystemConfig sys = systems::exascale_cielo(10.0);
  const double full_rate =
      static_cast<double>(sys.nodes) / sys.mtbce_node_seconds();
  const double reduced_rate = static_cast<double>(s.ranks) /
                              to_seconds(scaled_mtbce(sys, s));
  EXPECT_NEAR(reduced_rate / full_rate, 1.0, 1e-6);
}

TEST(ExperimentRunnerTest, BaselineStableAndReused) {
  workloads::WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 2;
  const ExperimentRunner runner(*workloads::find_workload("minife"), config);
  EXPECT_GT(runner.baseline().makespan, 0);
  EXPECT_EQ(runner.graph().ranks(), 8);
}

TEST(ExperimentRunnerTest, NoNoiseMeansZeroSlowdown) {
  workloads::WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 2;
  const ExperimentRunner runner(*workloads::find_workload("minife"), config);
  const auto result = runner.measure(noise::NoNoiseModel{}, 3);
  EXPECT_DOUBLE_EQ(result.mean_pct, 0.0);
  EXPECT_DOUBLE_EQ(result.stderr_pct, 0.0);
  EXPECT_EQ(result.seeds, 3);
  EXPECT_DOUBLE_EQ(result.mean_detours, 0.0);
}

TEST(ExperimentRunnerTest, MeasureAggregatesSeeds) {
  workloads::WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 2;
  const ExperimentRunner runner(*workloads::find_workload("lulesh"), config);
  const noise::UniformCeNoiseModel noise(
      milliseconds(10),
      std::make_shared<noise::FlatLoggingCost>(microseconds(775)));
  const auto result = runner.measure(noise, 4);
  EXPECT_GT(result.mean_pct, 0.0);
  EXPECT_GE(result.max_pct, result.mean_pct);
  EXPECT_LE(result.min_pct, result.mean_pct);
  EXPECT_GT(result.mean_detours, 0.0);
  EXPECT_GT(result.mean_stolen_s, 0.0);
}

TEST(ExperimentRunnerTest, DeterministicAcrossInstances) {
  workloads::WorkloadConfig config;
  config.ranks = 8;
  config.iterations = 2;
  const auto workload = workloads::find_workload("hpcg");
  const ExperimentRunner a(*workload, config);
  const ExperimentRunner b(*workload, config);
  const noise::UniformCeNoiseModel noise(
      milliseconds(50),
      std::make_shared<noise::FlatLoggingCost>(milliseconds(1)));
  EXPECT_DOUBLE_EQ(a.measure(noise, 2).mean_pct, b.measure(noise, 2).mean_pct);
}

TEST(ExperimentRunnerTest, OverloadReportsNoProgress) {
  // CE service outpacing the CPU must surface as no_progress, not hang.
  workloads::WorkloadConfig config;
  config.ranks = 4;
  config.iterations = 2;
  const ExperimentRunner runner(*workloads::find_workload("lulesh"), config);
  const noise::UniformCeNoiseModel noise(
      milliseconds(10), cost_model(LoggingMode::kFirmware));  // rho = 13.3
  const auto result = runner.measure(noise, 2);
  EXPECT_TRUE(result.no_progress);
}

TEST(ExperimentRunnerTest, FirmwareWorseThanSoftware) {
  workloads::WorkloadConfig config;
  config.ranks = 16;
  config.iterations = 4;
  const ExperimentRunner runner(*workloads::find_workload("lulesh"), config);
  // rho = 133ms/2s = 0.066 for firmware: heavy but stable.
  const TimeNs mtbce = seconds(2);
  const noise::UniformCeNoiseModel software(
      mtbce, cost_model(LoggingMode::kSoftware));
  const noise::UniformCeNoiseModel firmware(
      mtbce, cost_model(LoggingMode::kFirmware));
  EXPECT_GT(runner.measure(firmware, 3).mean_pct,
            runner.measure(software, 3).mean_pct);
}

}  // namespace
}  // namespace celog::core
