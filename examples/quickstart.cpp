// examples/quickstart.cpp
//
// Smallest end-to-end use of the celog public API:
//   1. build a workload task graph (LULESH, 64 ranks, 20 timesteps);
//   2. simulate it noise-free to get the baseline runtime;
//   3. simulate it with every node experiencing correctable errors under
//      firmware-first logging at an aggressive MTBCE;
//   4. report the slowdown.
//
// Run:  ./quickstart [--ranks N] [--iters K] [--mtbce-s S]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/logging_mode.hpp"
#include "noise/noise_model.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  celog::Cli cli("quickstart: simulate CE logging overhead for LULESH");
  cli.add_option("ranks", "64", "simulated ranks (one MPI process per node)");
  cli.add_option("iters", "20", "timesteps to simulate");
  cli.add_option("mtbce-s", "5.0", "mean time between CEs per node, seconds");
  cli.add_option("seeds", "4", "noisy runs to average");
  cli.add_option("jobs", "0", "threads for the seed sweep (0 = all cores)");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;
  const auto jobs_flag = cli.get_int("jobs");
  const int jobs = jobs_flag > 0
                       ? static_cast<int>(jobs_flag)
                       : static_cast<int>(
                             celog::util::ThreadPool::hardware_threads());

  const auto workload = celog::workloads::find_workload("lulesh");
  celog::workloads::WorkloadConfig config;
  config.ranks = static_cast<celog::goal::Rank>(cli.get_int("ranks"));
  config.iterations = static_cast<int>(cli.get_int("iters"));

  std::printf("building %s for %d ranks, %d steps...\n",
              workload->name().c_str(), config.ranks, config.iterations);
  const celog::core::ExperimentRunner runner(*workload, config);
  std::printf("graph: %zu ops, baseline runtime %s\n",
              runner.graph().total_ops(),
              celog::format_duration(runner.baseline().makespan).c_str());

  const celog::TimeNs mtbce = celog::from_seconds(cli.get_double("mtbce-s"));
  for (const auto mode : celog::core::all_logging_modes()) {
    const celog::noise::UniformCeNoiseModel noise(
        mtbce, celog::core::cost_model(mode));
    const auto result = runner.measure(
        noise, static_cast<int>(cli.get_int("seeds")), 1000, 100.0, jobs);
    std::printf(
        "%-14s per-event cost %9s -> slowdown %7.3f%% (+-%.3f), "
        "%.0f detours charged/run\n",
        celog::core::to_string(mode),
        celog::format_duration(celog::core::cost_of(mode)).c_str(),
        result.mean_pct, result.stderr_pct, result.mean_detours);
  }
  return 0;
}
