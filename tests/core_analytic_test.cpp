#include "core/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/logging_mode.hpp"
#include "noise/noise_model.hpp"
#include "workloads/workload.hpp"

namespace celog::core {
namespace {

AnalyticScenario exascale_x10() {
  AnalyticScenario s;
  s.nodes = 16384;
  s.mtbce = from_seconds(5494.0);
  s.cost = noise::costs::kFirmwareEmca;
  s.sync_period = milliseconds(15);  // LULESH-like
  s.island = 125;
  return s;
}

TEST(Utilization, MatchesRatio) {
  AnalyticScenario s = exascale_x10();
  EXPECT_NEAR(utilization(s), 0.133 / 5494.0, 1e-9);
  EXPECT_FALSE(no_progress(s));
  s.mtbce = milliseconds(100);
  EXPECT_TRUE(no_progress(s));
}

TEST(ExpectedMaxPoisson, DegenerateCases) {
  EXPECT_DOUBLE_EQ(expected_max_poisson(0.0, 10), 0.0);
  // One variable: E[max] = E[X] = mu.
  EXPECT_NEAR(expected_max_poisson(3.0, 1), 3.0, 1e-6);
  EXPECT_NEAR(expected_max_poisson(0.5, 1), 0.5, 1e-6);
}

TEST(ExpectedMaxPoisson, GrowsWithCount) {
  const double m1 = expected_max_poisson(1.0, 1);
  const double m10 = expected_max_poisson(1.0, 10);
  const double m100 = expected_max_poisson(1.0, 100);
  EXPECT_LT(m1, m10);
  EXPECT_LT(m10, m100);
  // Max of 100 Poisson(1) is ~4-5.
  EXPECT_GT(m100, 3.5);
  EXPECT_LT(m100, 6.0);
}

TEST(ExpectedMaxPoisson, GrowsWithMean) {
  EXPECT_LT(expected_max_poisson(0.1, 128), expected_max_poisson(1.0, 128));
  EXPECT_LT(expected_max_poisson(1.0, 128), expected_max_poisson(10.0, 128));
}

TEST(AdditiveSlowdown, MatchesClosedForm) {
  const AnalyticScenario s = exascale_x10();
  // p * lambda * c = 16384 * 0.133 / 5494 ~ 0.3966 (rho negligible).
  EXPECT_NEAR(additive_slowdown(s), 16384.0 * 0.133 / 5494.0, 1e-4);
}

TEST(AdditiveSlowdown, BusyPeriodAmplification) {
  AnalyticScenario s = exascale_x10();
  s.nodes = 1;
  s.mtbce = milliseconds(200);  // rho = 0.665
  const double expected = (0.133 / 0.2) / (1.0 - 0.665);
  EXPECT_NEAR(additive_slowdown(s), expected, 0.01);
  // ~200%: the paper's "hundreds of percent slower" at MTBCE 200 ms.
  EXPECT_GT(100.0 * additive_slowdown(s), 150.0);
}

TEST(IslandSlowdown, CoarseSyncCoalesces) {
  // lj-like: 10 s sync period. Island model must predict far less than
  // additive.
  AnalyticScenario s = exascale_x10();
  s.sync_period = seconds(10);
  s.island = 128;
  EXPECT_LT(island_slowdown(s), additive_slowdown(s) / 3.0);
}

TEST(IslandSlowdown, FineSyncApproachesAdditive) {
  // At very fine sync, events never coalesce: min(additive, island) is
  // additive.
  const AnalyticScenario s = exascale_x10();
  EXPECT_GE(island_slowdown(s) * 1.05, additive_slowdown(s) * 0.5);
}

TEST(PredictedSlowdown, InfiniteWhenNoProgress) {
  AnalyticScenario s = exascale_x10();
  s.mtbce = milliseconds(10);
  EXPECT_TRUE(std::isinf(predicted_slowdown_percent(s)));
}

TEST(PredictedSlowdown, MatchesPaperBandsAtExascaleX10) {
  // LULESH-like fine sync: additive ~ 40%.
  AnalyticScenario lulesh = exascale_x10();
  const double p_lulesh = predicted_slowdown_percent(lulesh);
  EXPECT_GT(p_lulesh, 20.0);
  EXPECT_LT(p_lulesh, 60.0);

  // HPCG-like 1 s sync: the paper's 10-15% band.
  AnalyticScenario hpcg = exascale_x10();
  hpcg.sync_period = seconds(1);
  hpcg.island = 128;
  const double p_hpcg = predicted_slowdown_percent(hpcg);
  EXPECT_GT(p_hpcg, 5.0);
  EXPECT_LT(p_hpcg, 25.0);

  // lj-like 10 s sync: a few percent.
  AnalyticScenario lj = exascale_x10();
  lj.sync_period = seconds(10);
  lj.island = 128;
  EXPECT_LT(predicted_slowdown_percent(lj), 8.0);
}

TEST(PredictedSlowdown, TracksSimulationOrder) {
  // The analytic model must reproduce the simulated sensitivity ordering
  // on a real workload pair at the exascale x10 point.
  const auto scale = scale_system(16384, 64);
  const auto sys = systems::exascale_cielo(10.0);

  auto run = [&](const char* name) {
    const auto w = workloads::find_workload(name);
    workloads::WorkloadConfig config;
    config.ranks = scale.ranks;
    config.trace_block = scaled_trace_block(*w, scale);
    config.iterations = w->iterations_for(2 * kSecond, 20);
    const ExperimentRunner runner(*w, config);
    const noise::UniformCeNoiseModel noise(scaled_mtbce(sys, scale),
                                           cost_model(LoggingMode::kFirmware));
    return runner.measure(noise, 3).mean_pct;
  };
  auto predict = [&](const char* name) {
    const auto w = workloads::find_workload(name);
    AnalyticScenario s;
    s.nodes = 16384;
    s.mtbce = sys.mtbce_node();
    s.cost = noise::costs::kFirmwareEmca;
    s.sync_period = w->sync_period();
    s.island = w->trace_ranks();
    return predicted_slowdown_percent(s);
  };

  const double sim_lulesh = run("lulesh");
  const double sim_lj = run("lammps-lj");
  EXPECT_GT(sim_lulesh, sim_lj);
  EXPECT_GT(predict("lulesh"), predict("lammps-lj"));
  // Analytic and simulated values agree within a factor ~3 for the
  // sensitive workload.
  EXPECT_GT(sim_lulesh, predict("lulesh") / 3.0);
  EXPECT_LT(sim_lulesh, predict("lulesh") * 3.0);
}

}  // namespace
}  // namespace celog::core
