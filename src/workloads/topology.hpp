// celog/workloads/topology.hpp
//
// Cartesian process-grid utilities used by the stencil workload models:
// balanced factorization of a rank count into 2-4 dimensions (the same job
// MPI_Dims_create does) and neighbor lookups with periodic or open
// boundaries.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "goal/task_graph.hpp"

namespace celog::workloads {

inline constexpr int kMaxDims = 4;

/// Factors `p` into `ndims` balanced dimensions (largest prime factors are
/// assigned to the currently smallest dimension, then dims are sorted in
/// decreasing order — mirroring MPI_Dims_create). The product always equals
/// p exactly.
std::array<goal::Rank, kMaxDims> dims_create(goal::Rank p, int ndims);

/// A Cartesian process grid over ranks [0, p).
class CartGrid {
 public:
  /// Builds a grid of `ndims` balanced dimensions over `p` ranks.
  CartGrid(goal::Rank p, int ndims, bool periodic);

  /// Builds a grid with explicit dimensions (product must equal p).
  CartGrid(std::array<goal::Rank, kMaxDims> dims, int ndims, bool periodic);

  int ndims() const { return ndims_; }
  goal::Rank size() const { return size_; }
  goal::Rank dim(int i) const;
  bool periodic() const { return periodic_; }

  /// Coordinates of `rank` (row-major: last dimension varies fastest).
  std::array<goal::Rank, kMaxDims> coords(goal::Rank rank) const;

  /// Rank at `coords` (each coordinate must be in range).
  goal::Rank rank_of(const std::array<goal::Rank, kMaxDims>& coords) const;

  /// Neighbor of `rank` one step along `dim` in direction `dir` (+1/-1).
  /// Open boundaries return nullopt at the edges; periodic grids wrap.
  std::optional<goal::Rank> neighbor(goal::Rank rank, int dim, int dir) const;

  /// Neighbor at an arbitrary coordinate offset (each component in
  /// {-1, 0, +1}); used for 26-neighbor (faces+edges+corners) stencils.
  /// The zero offset returns nullopt (a rank is not its own neighbor).
  std::optional<goal::Rank> neighbor_at(
      goal::Rank rank, const std::array<int, kMaxDims>& offset) const;

 private:
  std::array<goal::Rank, kMaxDims> dims_{};
  int ndims_;
  bool periodic_;
  goal::Rank size_;
};

/// Per-rank neighbor lists with per-link payload sizes: the unit the halo
/// exchange pattern consumes. Symmetric by construction of the builders
/// below (if a links to b with n bytes, b links to a with n bytes).
struct NeighborLists {
  /// neighbors[rank] = vector of (peer, bytes).
  std::vector<std::vector<std::pair<goal::Rank, std::int64_t>>> links;

  goal::Rank ranks() const { return static_cast<goal::Rank>(links.size()); }

  /// Verifies symmetry; throws InvalidInputError when violated.
  void validate_symmetry() const;
};

/// Face-neighbor (2*ndims) halo over a Cartesian grid: every adjacent pair
/// exchanges `face_bytes`.
NeighborLists face_neighbors(const CartGrid& grid, std::int64_t face_bytes);

/// Tiles block-local neighbor lists over `total` ranks: ranks
/// [k*block, (k+1)*block) get `build_block(block)`'s links shifted by
/// k*block; a final partial block of size total % block is built with
/// `build_block(tail)`. No link ever crosses a block boundary.
///
/// This reproduces the structure of LogGOPSim trace extrapolation (paper
/// §III-C): point-to-point communication is replicated per traced block
/// ("approximates point-to-point communications") while collectives are
/// regenerated exactly over the whole machine. Between collectives, delays
/// can only propagate within a block — which is why workloads with rare
/// collectives (LAMMPS-lj/-snap) are nearly immune to CE noise in the
/// paper's results.
NeighborLists tile_blocks(
    goal::Rank total, goal::Rank block,
    const std::function<NeighborLists(goal::Rank)>& build_block);

/// Full 26-neighbor halo on a 3-D grid: faces, edges, and corners exchange
/// different payload sizes (a face carries a 2-D plane, an edge a 1-D line,
/// a corner a single element — LULESH-style ghost exchange).
NeighborLists full_neighbors_3d(const CartGrid& grid, std::int64_t face_bytes,
                                std::int64_t edge_bytes,
                                std::int64_t corner_bytes);

}  // namespace celog::workloads
