# Empty compiler generated dependencies file for celog_collectives.
# This may be replaced when dependencies are built.
