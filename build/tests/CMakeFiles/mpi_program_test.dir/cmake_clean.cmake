file(REMOVE_RECURSE
  "CMakeFiles/mpi_program_test.dir/mpi_program_test.cpp.o"
  "CMakeFiles/mpi_program_test.dir/mpi_program_test.cpp.o.d"
  "mpi_program_test"
  "mpi_program_test.pdb"
  "mpi_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
