// Rendezvous-protocol tests: messages above the eager threshold S must
// handshake (RTS/CTS) before data moves, so large sends synchronize with the
// receiver — and CE detours on either side delay both.
#include <gtest/gtest.h>

#include "goal/task_graph.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"

namespace celog::sim {
namespace {

using goal::SequentialBuilder;
using goal::TaskGraph;

NetworkParams rndv_params() {
  // S = 64: anything bigger handshakes. o=100, L=1000, no byte costs.
  return NetworkParams{/*L=*/1000, /*o=*/100, /*g=*/200,
                       /*G=*/0.0, /*O=*/0.0, /*S=*/64};
}

TEST(Rendezvous, HandshakeRoundTripTiming) {
  // RTS: CPU [0,100), arrives 1100. CTS: CPU [1100,1200), arrives 2200.
  // Data: CPU [2200,2300), arrives 3300. Recv overhead -> 3400.
  TaskGraph g(2);
  SequentialBuilder s(g, 0);
  s.send(1, 1024, 1);
  SequentialBuilder r(g, 1);
  r.recv(0, 1024, 1);
  g.finalize();
  Simulator sim(g, rndv_params());
  const SimResult result = sim.run_baseline();
  EXPECT_EQ(result.makespan, 3400);
  // The send op completes when the data leaves the CPU, not at the RTS.
  EXPECT_EQ(result.rank_finish[0], 2300);
  EXPECT_EQ(result.data_messages, 1u);
  EXPECT_EQ(result.control_messages, 2u);  // RTS + CTS
}

TEST(Rendezvous, SenderBlocksUntilReceiverPosts) {
  // The receiver computes 10000 before posting: CTS goes out at
  // max(RTS arrival=1100, post=10000) -> CPU [10000,10100), arrives 11100;
  // data CPU [11100,11200), arrives 12200; recv -> 12300.
  TaskGraph g(2);
  SequentialBuilder s(g, 0);
  s.send(1, 1024, 1);
  s.calc(50);  // work after the send: delayed by the whole handshake
  SequentialBuilder r(g, 1);
  r.calc(10000);
  r.recv(0, 1024, 1);
  g.finalize();
  Simulator sim(g, rndv_params());
  const SimResult result = sim.run_baseline();
  EXPECT_EQ(result.makespan, 12300);
  EXPECT_EQ(result.rank_finish[0], 11250);  // data CPU end + calc 50
}

TEST(Rendezvous, EagerBelowThresholdUnaffected) {
  // 64 bytes == S: still eager.
  TaskGraph g(2);
  SequentialBuilder s(g, 0);
  s.send(1, 64, 1);
  SequentialBuilder r(g, 1);
  r.recv(0, 64, 1);
  g.finalize();
  Simulator sim(g, rndv_params());
  const SimResult result = sim.run_baseline();
  EXPECT_EQ(result.makespan, 1200);
  EXPECT_EQ(result.control_messages, 0u);
}

TEST(Rendezvous, ByteCostsChargedOnDataOnly) {
  NetworkParams p = rndv_params();
  p.G = 1.0;  // 1 ns per byte on the wire
  TaskGraph g(2);
  SequentialBuilder s(g, 0);
  s.send(1, 1000, 1);
  SequentialBuilder r(g, 1);
  r.recv(0, 1000, 1);
  g.finalize();
  Simulator sim(g, p);
  // RTS/CTS carry no payload: 1100 + 1100; data wire time +1000:
  // data CPU [2200,2300), arrival 2300+1000+1000=4300, recv -> 4400.
  EXPECT_EQ(sim.run_baseline().makespan, 4400);
}

TEST(Rendezvous, UnmatchedRendezvousSendDeadlocks) {
  // Unlike eager sends, a rendezvous send cannot complete without its
  // receiver (no CTS ever arrives).
  TaskGraph g(2);
  SequentialBuilder s(g, 0);
  s.send(1, 1024, 1);
  g.finalize();
  Simulator sim(g, rndv_params());
  EXPECT_THROW(sim.run_baseline(), DeadlockError);
}

TEST(Rendezvous, MixedEagerAndRendezvousOnOneLink) {
  TaskGraph g(2);
  SequentialBuilder s(g, 0);
  s.begin_phase();
  s.send(1, 8, 1);      // eager
  s.send(1, 4096, 2);   // rendezvous
  s.end_phase();
  SequentialBuilder r(g, 1);
  r.begin_phase();
  r.recv(0, 8, 1);
  r.recv(0, 4096, 2);
  r.end_phase();
  g.finalize();
  Simulator sim(g, rndv_params());
  const SimResult result = sim.run_baseline();
  EXPECT_EQ(result.data_messages, 2u);
  EXPECT_EQ(result.control_messages, 2u);
}

TEST(Rendezvous, ExchangeBothDirectionsNoDeadlock) {
  // Symmetric large-message exchange posted as a nonblocking phase: the
  // handshake must not deadlock (both RTS fly, both CTS return).
  TaskGraph g(2);
  for (goal::Rank rank = 0; rank < 2; ++rank) {
    SequentialBuilder b(g, rank);
    b.begin_phase();
    b.send(1 - rank, 100000, 1);
    b.recv(1 - rank, 100000, 1);
    b.end_phase();
    b.calc(10);
  }
  g.finalize();
  Simulator sim(g, rndv_params());
  const SimResult result = sim.run_baseline();
  EXPECT_EQ(result.data_messages, 2u);
  EXPECT_EQ(result.control_messages, 4u);
  EXPECT_EQ(result.rank_finish[0], result.rank_finish[1]);
}

TEST(Rendezvous, ThresholdBoundaryExact) {
  NetworkParams p = rndv_params();
  EXPECT_TRUE(p.eager(64));
  EXPECT_FALSE(p.eager(65));
}

}  // namespace
}  // namespace celog::sim
