// celog/util/net.hpp
//
// Minimal socket/pipe plumbing for the sweep-serving daemon (src/server)
// and its clients (tools/celog-cli, tests, bench). Everything here is
// policy-free byte transport: fd ownership, EINTR-safe partial reads and
// writes that never raise SIGPIPE, Unix/TCP listen + connect helpers, and
// a nonblocking self-pipe for poll-loop wakeups (the async-signal-safe
// channel a SIGTERM handler can write to).
//
// Error reporting: helpers that set up resources (listen/connect/pipe)
// throw celog::Error with errno context — setup failures are recoverable
// input/environment errors, not contract violations. The per-byte I/O
// helpers return counts and leave errno intact instead, because on the
// daemon's hot path EAGAIN/EPIPE are ordinary control flow, not errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace celog::util {

/// Move-only owner of a file descriptor; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (EINTR-safe) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// One read(2), retrying EINTR. Returns bytes read (0 = EOF) or -1 with
/// errno set (EAGAIN/EWOULDBLOCK on an idle nonblocking fd).
std::ptrdiff_t read_some(int fd, void* buf, std::size_t n);

/// One write, retrying EINTR and suppressing SIGPIPE (send(MSG_NOSIGNAL)
/// on sockets, plain write(2) on pipes/files). Returns bytes written or -1
/// with errno set (EAGAIN = flow control; EPIPE/ECONNRESET = peer gone).
std::ptrdiff_t write_some(int fd, const void* buf, std::size_t n);

/// Blocking loop over write_some until every byte is out (handles partial
/// writes). Returns false when the peer is gone or the fd errors.
bool write_all(int fd, std::string_view data);

/// Switches O_NONBLOCK on. Throws celog::Error on failure.
void set_nonblocking(int fd);

/// Creates, binds, and listens on a Unix stream socket at `path`. A stale
/// socket file at `path` is unlinked first (the mcelog convention: the
/// daemon owns its socket path). Throws celog::Error on failure.
ScopedFd listen_unix(const std::string& path, int backlog = 64);

/// Creates, binds, and listens on 127.0.0.1:`port` (0 = ephemeral). The
/// actually-bound port is stored through `bound_port` when non-null.
/// Loopback only: the request protocol is unauthenticated, so the daemon
/// never listens on a routable address. Throws celog::Error on failure.
ScopedFd listen_tcp(std::uint16_t port, int backlog = 64,
                    std::uint16_t* bound_port = nullptr);

/// Connects a blocking client socket. Throw celog::Error on failure.
ScopedFd connect_unix(const std::string& path);
ScopedFd connect_tcp(const std::string& host, std::uint16_t port);

/// A pipe whose both ends are nonblocking: {read end, write end}. The
/// write end is safe to write from a signal handler (write(2) is
/// async-signal-safe; a full pipe drops the byte, which is fine for a
/// level-checked wakeup). Throws celog::Error on failure.
std::pair<ScopedFd, ScopedFd> make_wake_pipe();

/// Blocking newline-delimited reader for client-side code (celog-cli,
/// tests, bench clients): buffers reads and hands back one line at a time
/// without the trailing '\n'. Returns false on clean EOF with no buffered
/// partial line; a final unterminated line is returned as-is. Throws
/// celog::Error on read errors.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool read_line(std::string& out);

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
};

}  // namespace celog::util
