#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace celog::core {

ScaledSystem scale_system(std::int64_t paper_nodes, goal::Rank max_ranks) {
  CELOG_ASSERT_MSG(paper_nodes > 0, "system must have nodes");
  CELOG_ASSERT_MSG(max_ranks > 0, "must simulate at least one rank");
  ScaledSystem s;
  if (paper_nodes <= max_ranks) {
    s.ranks = static_cast<goal::Rank>(paper_nodes);
    s.mtbce_divisor = 1.0;
  } else {
    s.ranks = max_ranks;
    s.mtbce_divisor =
        static_cast<double>(paper_nodes) / static_cast<double>(max_ranks);
  }
  return s;
}

TimeNs scaled_mtbce(const SystemConfig& system, const ScaledSystem& scale) {
  const double s = system.mtbce_node_seconds() / scale.mtbce_divisor;
  return from_seconds(s);
}

goal::Rank scaled_trace_block(const workloads::Workload& workload,
                              const ScaledSystem& scale) {
  const double shrunk =
      static_cast<double>(workload.trace_ranks()) / scale.mtbce_divisor;
  const auto block = static_cast<goal::Rank>(std::llround(shrunk));
  return std::clamp<goal::Rank>(block, 1, scale.ranks);
}

ExperimentRunner::ExperimentRunner(const workloads::Workload& workload,
                                   const workloads::WorkloadConfig& config,
                                   sim::NetworkParams net)
    : graph_(workload.build(config)),
      simulator_(graph_, net),
      baseline_(simulator_.run_baseline()) {}

sim::SimResult ExperimentRunner::run_once(const noise::NoiseModel& noise,
                                          std::uint64_t seed) const {
  return simulator_.run(noise, seed);
}

SlowdownResult ExperimentRunner::measure(const noise::NoiseModel& noise,
                                         int seeds, std::uint64_t base_seed,
                                         double horizon_factor,
                                         int jobs) const {
  CELOG_ASSERT_MSG(seeds >= 1, "need at least one seed");
  CELOG_ASSERT_MSG(horizon_factor > 1.0, "horizon must exceed the baseline");
  const auto horizon = static_cast<TimeNs>(
      std::min(static_cast<double>(noise::RankNoise::kNoHorizon),
               static_cast<double>(baseline_.makespan) * horizon_factor));

  // Every seed's outcome lands in its index slot; the reduction below walks
  // the slots in seed order with the same arithmetic as a serial loop, so
  // the result does not depend on jobs or on thread scheduling. Seeds that
  // blow the horizon are recorded (not rethrown): the paper's no-progress
  // regime is a property of the cell, and the other seeds still yield a
  // partial measurement. Other errors (deadlock, invalid input) propagate,
  // lowest seed first.
  struct SeedOutcome {
    double pct = 0.0;
    double detours = 0.0;
    double stolen_s = 0.0;
    bool no_progress = false;
  };
  std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(seeds));
  const auto run_seed = [&](std::size_t i) {
    SeedOutcome& o = outcomes[i];
    try {
      const sim::SimResult r =
          simulator_.run(noise, base_seed + i, horizon);
      o.pct = sim::slowdown_percent(baseline_, r);
      o.detours = static_cast<double>(r.detours_charged);
      o.stolen_s = to_seconds(r.noise_stolen);
    } catch (const NoProgressError&) {
      o.no_progress = true;
    }
  };
  if (jobs > 1 && seeds > 1) {
    util::ThreadPool pool(
        static_cast<unsigned>(std::min<int>(jobs, seeds)));
    pool.parallel_for_indexed(outcomes.size(), run_seed);
  } else {
    for (std::size_t i = 0; i < outcomes.size(); ++i) run_seed(i);
  }

  RunningStats pct;
  RunningStats detours;
  RunningStats stolen;
  SlowdownResult out;
  out.baseline_makespan = baseline_.makespan;
  for (const SeedOutcome& o : outcomes) {
    if (o.no_progress) {
      out.no_progress = true;
      continue;
    }
    pct.add(o.pct);
    detours.add(o.detours);
    stolen.add(o.stolen_s);
  }
  out.mean_pct = pct.mean();
  out.stderr_pct = pct.stderr_mean();
  out.min_pct = pct.min();
  out.max_pct = pct.max();
  out.seeds = static_cast<int>(pct.count());
  out.mean_detours = detours.mean();
  out.mean_stolen_s = stolen.mean();
  return out;
}

}  // namespace celog::core
