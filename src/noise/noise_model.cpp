#include "noise/noise_model.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace celog::noise {

std::unique_ptr<DetourSource> NoNoiseModel::make_source(RankId,
                                                        std::uint64_t) const {
  return std::make_unique<NullDetourSource>();
}

UniformCeNoiseModel::UniformCeNoiseModel(
    TimeNs mtbce, std::shared_ptr<const LoggingCostModel> cost)
    : mtbce_(mtbce), cost_(std::move(cost)) {
  CELOG_ASSERT_MSG(mtbce_ > 0, "MTBCE must be positive");
  CELOG_ASSERT_MSG(cost_ != nullptr, "cost model required");
}

std::unique_ptr<DetourSource> UniformCeNoiseModel::make_source(
    RankId rank, std::uint64_t run_seed) const {
  return std::make_unique<PoissonDetourSource>(
      mtbce_, *cost_,
      Xoshiro256::for_stream(run_seed, static_cast<std::uint64_t>(rank)));
}

SingleRankCeNoiseModel::SingleRankCeNoiseModel(
    RankId noisy_rank, TimeNs mtbce,
    std::shared_ptr<const LoggingCostModel> cost)
    : noisy_rank_(noisy_rank), mtbce_(mtbce), cost_(std::move(cost)) {
  CELOG_ASSERT_MSG(noisy_rank_ >= 0, "noisy rank must be a valid rank");
  CELOG_ASSERT_MSG(mtbce_ > 0, "MTBCE must be positive");
  CELOG_ASSERT_MSG(cost_ != nullptr, "cost model required");
}

std::unique_ptr<DetourSource> SingleRankCeNoiseModel::make_source(
    RankId rank, std::uint64_t run_seed) const {
  if (rank != noisy_rank_) return std::make_unique<NullDetourSource>();
  return std::make_unique<PoissonDetourSource>(
      mtbce_, *cost_,
      Xoshiro256::for_stream(run_seed, static_cast<std::uint64_t>(rank)));
}

TraceReplayNoiseModel::TraceReplayNoiseModel(std::vector<Detour> trace,
                                             TimeNs window,
                                             bool rotate_per_rank)
    : trace_(std::move(trace)), window_(window), rotate_(rotate_per_rank) {
  CELOG_ASSERT_MSG(window_ > 0, "trace window must be positive");
  CELOG_ASSERT_MSG(
      std::is_sorted(trace_.begin(), trace_.end(),
                     [](const Detour& a, const Detour& b) {
                       return a.arrival < b.arrival;
                     }),
      "trace must be sorted by arrival");
  for (const Detour& d : trace_) {
    CELOG_ASSERT_MSG(d.arrival >= 0 && d.arrival < window_,
                     "trace detours must fall inside the window");
  }
}

std::unique_ptr<DetourSource> TraceReplayNoiseModel::make_source(
    RankId rank, std::uint64_t run_seed) const {
  // Rotate the trace by a per-(rank, seed) offset inside the window so the
  // machine does not execute detours in lockstep, then shift everything to
  // start at 0. The replayed trace covers one window only; callers simulate
  // runs shorter than the window or accept a quiet tail (documented).
  TimeNs offset = 0;
  if (rotate_ && !trace_.empty()) {
    auto rng = Xoshiro256::for_stream(run_seed,
                                      static_cast<std::uint64_t>(rank));
    offset = static_cast<TimeNs>(
        rng.uniform_below(static_cast<std::uint64_t>(window_)));
  }
  std::vector<Detour> rotated;
  rotated.reserve(trace_.size());
  for (const Detour& d : trace_) {
    const TimeNs shifted = (d.arrival + offset) % window_;
    rotated.push_back(Detour{shifted, d.duration});
  }
  std::sort(rotated.begin(), rotated.end(),
            [](const Detour& a, const Detour& b) {
              return a.arrival < b.arrival;
            });
  return std::make_unique<TraceDetourSource>(std::move(rotated));
}

}  // namespace celog::noise
