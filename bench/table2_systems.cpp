// bench/table2_systems — regenerates Table II: "Measured and hypothesized
// correctable error parameters used in this work."
//
// Prints, for every system: CEs/node/year (the paper's stated value and the
// value recomputed from CEs/GiB/year x GiB/node), memory per node, MTBCE per
// node in seconds, and the physical/simulated node counts. Rows where the
// stated and derived values disagree reflect inconsistencies in the paper's
// own table (see DESIGN.md) — both are shown.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/system_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace celog;
  Cli cli("table2_systems: regenerate Table II system parameters");
  cli.add_option("json", "",
                 "append a perf-trajectory JSONL record to this file");
  cli.add_option("jobs", "0", "threads for the row sweep (0 = all cores)");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;
  const bench::WallTimer timer;
  bench::PerfJson perf(cli.get("json"), "table2_systems");
  const auto jobs_flag = cli.get_int("jobs");
  const unsigned jobs = jobs_flag > 0
                            ? static_cast<unsigned>(jobs_flag)
                            : util::ThreadPool::hardware_threads();

  std::printf("== Table II: correctable-error parameters ==\n\n");
  const auto systems = core::systems::table2();
  const auto rows = bench::parallel_cells(
      systems.size(), jobs, [&](std::size_t i) -> std::vector<std::string> {
        const auto& s = systems[i];
        return {
            s.name,
            format_fixed(s.ces_per_node_year, 2),
            format_fixed(s.gib_per_node, 1),
            format_fixed(s.ces_per_gib_year, 2),
            format_fixed(s.mtbce_node_seconds(), 1),
            format_fixed(s.derived_ces_per_node_year(), 2),
            s.nodes > 0 ? format_count(s.nodes) : "-",
            s.simulated_nodes > 0 ? format_count(s.simulated_nodes) : "-",
        };
      });
  TextTable table({"system", "CEs/node/yr", "GiB/node", "CEs/GiB/yr",
                   "MTBCE_node (s)", "derived CEs/node/yr", "nodes",
                   "simulated"});
  for (const auto& row : rows) table.add_row(std::vector<std::string>(row));
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nnotes: MTBCE from the stated CEs/node/yr over a 365-day year.\n"
      "Trinity/Summit rows keep the paper's stated CEs/node/yr; the derived\n"
      "column shows the value the density columns imply (paper-internal\n"
      "inconsistency, documented in DESIGN.md).\n");
  perf.metric("total_wall_s", timer.seconds());
  return 0;
}
