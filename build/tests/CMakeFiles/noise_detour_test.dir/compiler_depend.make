# Empty compiler generated dependencies file for noise_detour_test.
# This may be replaced when dependencies are built.
