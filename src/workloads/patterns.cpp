#include "workloads/patterns.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace celog::workloads {

using goal::Rank;

Rank effective_block(const WorkloadConfig& config) {
  if (config.trace_block <= 0) return config.ranks;
  return std::min(config.trace_block, config.ranks);
}

BuildContext::BuildContext(goal::TaskGraph& graph, std::uint64_t seed) {
  const Rank p = graph.ranks();
  builders_.reserve(static_cast<std::size_t>(p));
  rngs_.reserve(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    builders_.emplace_back(graph, r);
    rngs_.push_back(Xoshiro256::for_stream(seed, static_cast<std::uint64_t>(r)));
  }
}

std::vector<double> BuildContext::persistent_imbalance(double imbalance) {
  CELOG_ASSERT_MSG(imbalance >= 0.0 && imbalance < 1.0,
                   "imbalance must be in [0, 1)");
  std::vector<double> factors(static_cast<std::size_t>(ranks()));
  for (Rank r = 0; r < ranks(); ++r) {
    const double u = rng(r).uniform01() * 2.0 - 1.0;  // [-1, 1)
    factors[static_cast<std::size_t>(r)] = 1.0 + imbalance * u;
  }
  return factors;
}

TimeNs jittered_compute(Xoshiro256& rng, TimeNs nominal, double factor,
                        double jitter) {
  CELOG_ASSERT_MSG(nominal >= 0, "compute time must be non-negative");
  CELOG_ASSERT_MSG(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  const double u = rng.uniform01() * 2.0 - 1.0;  // [-1, 1)
  const double scaled =
      static_cast<double>(nominal) * factor * (1.0 + jitter * u);
  return std::max<TimeNs>(1, static_cast<TimeNs>(scaled));
}

void compute_phase(BuildContext& ctx, TimeNs nominal,
                   std::span<const double> imbalance, double jitter) {
  CELOG_ASSERT_MSG(imbalance.size() ==
                       static_cast<std::size_t>(ctx.ranks()),
                   "need one imbalance factor per rank");
  for (Rank r = 0; r < ctx.ranks(); ++r) {
    const double factor = imbalance[static_cast<std::size_t>(r)];
    ctx.builder(r).calc(jittered_compute(ctx.rng(r), nominal, factor, jitter));
  }
}

void halo_exchange(BuildContext& ctx, const NeighborLists& neighbors) {
  CELOG_ASSERT_MSG(neighbors.ranks() == ctx.ranks(),
                   "neighbor lists must cover every rank");
  const goal::Tag tag = ctx.tags().allocate(1);
  for (Rank r = 0; r < ctx.ranks(); ++r) {
    const auto& links = neighbors.links[static_cast<std::size_t>(r)];
    if (links.empty()) continue;
    auto& b = ctx.builder(r);
    b.begin_phase();
    for (const auto& [peer, bytes] : links) {
      b.send(peer, bytes, tag);
      b.recv(peer, bytes, tag);
    }
    b.end_phase();
  }
}

}  // namespace celog::workloads
