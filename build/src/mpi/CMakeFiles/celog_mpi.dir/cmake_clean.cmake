file(REMOVE_RECURSE
  "CMakeFiles/celog_mpi.dir/compile.cpp.o"
  "CMakeFiles/celog_mpi.dir/compile.cpp.o.d"
  "CMakeFiles/celog_mpi.dir/program.cpp.o"
  "CMakeFiles/celog_mpi.dir/program.cpp.o.d"
  "CMakeFiles/celog_mpi.dir/trace_format.cpp.o"
  "CMakeFiles/celog_mpi.dir/trace_format.cpp.o.d"
  "libcelog_mpi.a"
  "libcelog_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celog_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
