// celogd — the long-running sweep-serving daemon.
//
// Listens on a Unix socket (--unix PATH) and/or loopback TCP (--tcp PORT),
// serves the newline-delimited request protocol documented in
// src/server/protocol.hpp, and drains gracefully on SIGTERM/SIGINT: no new
// connections or sweeps are admitted, every admitted request finishes and
// its response is flushed, then the process exits.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "server/daemon.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/net.hpp"

namespace {

// Written once before signals are installed, then only read by the
// handler; write(2) is async-signal-safe.
volatile int g_drain_fd = -1;

extern "C" void handle_term_signal(int) {
  const int fd = g_drain_fd;
  if (fd >= 0) {
    const char q = 'q';
    // A full wake pipe drops the byte; the drain request is level-checked,
    // so that is harmless.
    (void)!::write(fd, &q, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  celog::Cli cli(
      "celogd: serve celog sweep requests over a Unix/TCP socket.\n"
      "Request grammar and response format: src/server/protocol.hpp.");
  cli.add_option("unix", "", "Unix socket path to listen on");
  cli.add_option("tcp", "-1",
                 "loopback TCP port to listen on (0 = ephemeral, -1 = off)");
  cli.add_option("workers", "2", "sweep worker threads");
  cli.add_option("quota", "4", "per-connection in-flight request cap");
  cli.add_option("max-queue", "64", "admitted-but-not-started request cap");
  cli.add_option("max-connections", "64", "concurrent client cap");
  cli.add_option("jobs-cap", "8", "ceiling on a request's --jobs");
  cli.add_option("memdb", "",
                 "fleet memory-health DB dump served by the memdb verb");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  try {
    const std::string unix_path = cli.get("unix");
    const std::int64_t tcp_port = cli.get_int("tcp");

    std::vector<celog::util::ScopedFd> listeners;
    if (!unix_path.empty()) {
      listeners.push_back(celog::util::listen_unix(unix_path));
      std::fprintf(stderr, "celogd: listening on %s\n", unix_path.c_str());
    }
    if (tcp_port >= 0) {
      if (tcp_port > 65535) {
        std::fprintf(stderr, "celogd: --tcp out of range: %lld\n",
                     static_cast<long long>(tcp_port));
        return 2;
      }
      std::uint16_t bound = 0;
      listeners.push_back(celog::util::listen_tcp(
          static_cast<std::uint16_t>(tcp_port), 64, &bound));
      std::fprintf(stderr, "celogd: listening on 127.0.0.1:%u\n",
                   static_cast<unsigned>(bound));
    }
    if (listeners.empty()) {
      std::fprintf(stderr,
                   "celogd: nothing to listen on (give --unix and/or --tcp)\n");
      return 2;
    }

    celog::server::DaemonConfig config;
    config.workers = static_cast<int>(cli.get_int("workers"));
    config.quota = static_cast<int>(cli.get_int("quota"));
    config.max_queue = static_cast<std::size_t>(cli.get_int("max-queue"));
    config.max_connections =
        static_cast<std::size_t>(cli.get_int("max-connections"));
    config.jobs_cap = static_cast<int>(cli.get_int("jobs-cap"));
    config.memdb_path = cli.get("memdb");

    celog::server::Daemon daemon(std::move(listeners), config);
    g_drain_fd = daemon.drain_fd();
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, handle_term_signal);
    std::signal(SIGINT, handle_term_signal);

    daemon.run();

    g_drain_fd = -1;
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
    const auto c = daemon.counters();
    std::fprintf(stderr,
                 "celogd: drained (%llu requests served, %llu connections)\n",
                 static_cast<unsigned long long>(c.requests_completed),
                 static_cast<unsigned long long>(c.connections_accepted));
    return 0;
  } catch (const celog::Error& e) {
    std::fprintf(stderr, "celogd: %s\n", e.what());
    return 1;
  }
}
