// bench/perf_json.hpp
//
// Perf-trajectory recording for the bench binaries: each run appends ONE
// line of JSON (JSONL) to a shared file, so `BENCH_engine.json`-style files
// accumulate a machine-readable performance history across commits. A
// record carries the bench name, a UTC timestamp, a flat map of scalar
// metrics (events/s, p50/p95 wall times, makespan checksums), and an
// optional list of per-cell wall-clock timings.
//
// Schema (one object per line; see DESIGN.md, "Engine hot path"):
//   {"bench": "<name>", "utc": "2026-02-03T04:05:06Z",
//    "metrics": {"<metric>": <number>, ...},
//    "cells": [{"label": "<cell>", "wall_s": <number>}, ...]}
//
// The record is written on destruction; with an empty path the recorder is
// a no-op, so benches can pass --json unconditionally. Cell recording is
// mutex-guarded (sweeps time cells on pool threads) and cells are sorted by
// label before writing, keeping the output deterministic under --jobs. The
// record timestamp is read through the WallClock seam (bench/wall_clock.hpp)
// — pin it in a test and the whole record becomes byte-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "wall_clock.hpp"

namespace celog::bench {

/// Appends one JSONL perf record on destruction. Disabled when constructed
/// with an empty path.
class PerfJson {
 public:
  PerfJson(std::string path, std::string bench)
      : path_(std::move(path)), bench_(std::move(bench)) {}

  PerfJson(const PerfJson&) = delete;
  PerfJson& operator=(const PerfJson&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Records a scalar metric. Later values overwrite earlier ones with the
  /// same name, so a bench can refine a metric as it goes. Metrics are
  /// tracked even when recording is disabled (lookup() serves floor checks);
  /// only the file write is gated on enabled().
  void metric(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& m : metrics_) {
      if (m.first == name) {
        m.second = value;
        return;
      }
    }
    metrics_.emplace_back(name, value);
  }

  /// Returns a recorded metric's value, or -1.0 if absent (metrics are
  /// recorded regardless of enabled(), so floor checks work without --json).
  double lookup(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : metrics_) {
      if (m.first == name) return m.second;
    }
    return -1.0;
  }

  /// Records one cell's wall time. Thread-safe.
  void cell(const std::string& label, double wall_s) {
    if (!enabled()) return;
    const std::lock_guard<std::mutex> lock(mu_);
    cells_.emplace_back(label, wall_s);
  }

  /// Runs `fn`, records its wall time under `label`, returns its result.
  template <typename Fn>
  auto time_cell(const std::string& label, Fn&& fn) {
    const WallTimer timer;
    auto result = fn();
    cell(label, timer.seconds());
    return result;
  }

  ~PerfJson() {
    if (!enabled()) return;
    // Assemble the whole record in memory first and append it with ONE
    // write: "a" opens with O_APPEND, so a single buffered write of a
    // record-sized chunk lands contiguously even when several bench
    // processes share the trajectory file. Writing piecemeal with
    // unchecked fprintf could interleave records and — on a full disk or
    // a signal-shortened write — silently truncate one, corrupting the
    // JSONL file for every later reader.
    std::string record;
    record.reserve(256 + 48 * metrics_.size() + 64 * cells_.size());
    record += "{\"bench\":\"";
    record += escape(bench_);
    record += "\",\"utc\":\"";
    record += utc_now();
    record += "\",\"metrics\":{";
    char num[64];
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i != 0) record += ',';
      record += '"';
      record += escape(metrics_[i].first);
      record += "\":";
      std::snprintf(num, sizeof(num), "%.17g", metrics_[i].second);
      record += num;
    }
    record += '}';
    if (!cells_.empty()) {
      std::sort(cells_.begin(), cells_.end());
      record += ",\"cells\":[";
      for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (i != 0) record += ',';
        record += "{\"label\":\"";
        record += escape(cells_[i].first);
        record += "\",\"wall_s\":";
        std::snprintf(num, sizeof(num), "%.6g", cells_[i].second);
        record += num;
        record += '}';
      }
      record += ']';
    }
    record += "}\n";

    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot append perf record to %s\n",
                   path_.c_str());
      return;
    }
    const std::size_t written = std::fwrite(record.data(), 1, record.size(), f);
    // fclose can be the call that surfaces a short write (it flushes the
    // stdio buffer), so its result is part of the record's fate too.
    const bool closed_ok = std::fclose(f) == 0;
    if (written != record.size() || !closed_ok) {
      std::fprintf(stderr,
                   "[bench] short write appending perf record to %s (%zu of "
                   "%zu bytes; the trailing record may be truncated)\n",
                   path_.c_str(), written, record.size());
    }
  }

 private:
  /// Formats the WallClock epoch time as an ISO-8601 UTC stamp. The clock
  /// read goes through the seam; everything after it is deterministic.
  static std::string utc_now() {
    const auto now = static_cast<std::time_t>(WallClock::utc_seconds());
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::string bench_;
  std::mutex mu_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, double>> cells_;
};

}  // namespace celog::bench
