#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace celog {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  CELOG_ASSERT_MSG(!headers_.empty(), "table needs at least one column");
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;  // label column by default
}

void TextTable::add_row(std::vector<std::string> cells) {
  CELOG_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t col, Align align) {
  CELOG_ASSERT(col < aligns_.size());
  aligns_[col] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_cell = [&](const std::string& text, std::size_t c) {
    const auto pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) out << std::string(pad, ' ') << text;
    else out << text << std::string(pad, ' ');
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << " | ";
    emit_cell(headers_[c], c);
  }
  out << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << " | ";
      emit_cell(row[c], c);
    }
    out << '\n';
  }
  return out.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

std::string format_percent(double pct) {
  if (pct < 0.01 && pct > -0.01) return "<0.01";
  if (pct >= 100.0) return format_fixed(pct, 1);
  return format_fixed(pct, 2);
}

std::string format_count(std::int64_t value) {
  const bool neg = value < 0;
  std::uint64_t v = neg ? static_cast<std::uint64_t>(-(value + 1)) + 1
                        : static_cast<std::uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace celog
