#include "mpi/program.hpp"

#include "util/error.hpp"

#include <cstdint>
#include <vector>

namespace celog::mpi {

const char* to_string(CallType type) {
  switch (type) {
    case CallType::kComp: return "comp";
    case CallType::kSend: return "send";
    case CallType::kRecv: return "recv";
    case CallType::kIsend: return "isend";
    case CallType::kIrecv: return "irecv";
    case CallType::kWait: return "wait";
    case CallType::kWaitall: return "waitall";
    case CallType::kBarrier: return "barrier";
    case CallType::kAllreduce: return "allreduce";
    case CallType::kBcast: return "bcast";
    case CallType::kReduce: return "reduce";
    case CallType::kAllgather: return "allgather";
    case CallType::kAlltoall: return "alltoall";
    case CallType::kReduceScatter: return "reduce_scatter";
  }
  return "?";
}

bool is_collective(CallType type) {
  switch (type) {
    case CallType::kBarrier:
    case CallType::kAllreduce:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllgather:
    case CallType::kAlltoall:
    case CallType::kReduceScatter:
      return true;
    default:
      return false;
  }
}

Call Call::comp(TimeNs duration) {
  CELOG_ASSERT_MSG(duration >= 0, "compute duration must be non-negative");
  Call c;
  c.type = CallType::kComp;
  c.duration = duration;
  return c;
}

Call Call::send(goal::Rank peer, std::int64_t bytes, goal::Tag tag) {
  Call c;
  c.type = CallType::kSend;
  c.peer = peer;
  c.bytes = bytes;
  c.tag = tag;
  return c;
}

Call Call::recv(goal::Rank peer, std::int64_t bytes, goal::Tag tag) {
  Call c = send(peer, bytes, tag);
  c.type = CallType::kRecv;
  return c;
}

Call Call::isend(goal::Rank peer, std::int64_t bytes, goal::Tag tag,
                 Request request) {
  Call c = send(peer, bytes, tag);
  c.type = CallType::kIsend;
  c.request = request;
  return c;
}

Call Call::irecv(goal::Rank peer, std::int64_t bytes, goal::Tag tag,
                 Request request) {
  Call c = send(peer, bytes, tag);
  c.type = CallType::kIrecv;
  c.request = request;
  return c;
}

Call Call::wait(Request request) {
  Call c;
  c.type = CallType::kWait;
  c.request = request;
  return c;
}

Call Call::waitall() {
  Call c;
  c.type = CallType::kWaitall;
  return c;
}

Call Call::barrier() {
  Call c;
  c.type = CallType::kBarrier;
  return c;
}

Call Call::allreduce(std::int64_t bytes) {
  Call c;
  c.type = CallType::kAllreduce;
  c.bytes = bytes;
  return c;
}

Call Call::bcast(goal::Rank root, std::int64_t bytes) {
  Call c;
  c.type = CallType::kBcast;
  c.peer = root;
  c.bytes = bytes;
  return c;
}

Call Call::reduce(goal::Rank root, std::int64_t bytes) {
  Call c = bcast(root, bytes);
  c.type = CallType::kReduce;
  return c;
}

Call Call::allgather(std::int64_t bytes) {
  Call c = allreduce(bytes);
  c.type = CallType::kAllgather;
  return c;
}

Call Call::alltoall(std::int64_t bytes) {
  Call c = allreduce(bytes);
  c.type = CallType::kAlltoall;
  return c;
}

Call Call::reduce_scatter(std::int64_t bytes) {
  Call c = allreduce(bytes);
  c.type = CallType::kReduceScatter;
  return c;
}

MpiProgram::MpiProgram(goal::Rank ranks) {
  CELOG_ASSERT_MSG(ranks > 0, "MPI program needs at least one rank");
  calls_.resize(static_cast<std::size_t>(ranks));
}

void MpiProgram::add(goal::Rank rank, const Call& call) {
  CELOG_ASSERT(rank >= 0 && rank < ranks());
  switch (call.type) {
    case CallType::kSend:
    case CallType::kRecv:
    case CallType::kIsend:
    case CallType::kIrecv:
      CELOG_ASSERT_MSG(call.peer >= 0 && call.peer < ranks(),
                       "peer out of range");
      CELOG_ASSERT_MSG(call.peer != rank, "self-messages are not supported");
      CELOG_ASSERT_MSG(call.bytes >= 0, "negative message size");
      break;
    case CallType::kBcast:
    case CallType::kReduce:
      CELOG_ASSERT_MSG(call.peer >= 0 && call.peer < ranks(),
                       "root out of range");
      CELOG_ASSERT_MSG(call.bytes >= 0, "negative payload");
      break;
    default:
      break;
  }
  if (call.type == CallType::kIsend || call.type == CallType::kIrecv) {
    CELOG_ASSERT_MSG(call.request >= 0, "nonblocking call needs a request id");
  }
  calls_[static_cast<std::size_t>(rank)].push_back(call);
}

const std::vector<Call>& MpiProgram::calls(goal::Rank rank) const {
  CELOG_ASSERT(rank >= 0 && rank < ranks());
  return calls_[static_cast<std::size_t>(rank)];
}

std::size_t MpiProgram::total_calls() const {
  std::size_t total = 0;
  for (const auto& per_rank : calls_) total += per_rank.size();
  return total;
}

}  // namespace celog::mpi
