// celog/collectives/collectives.hpp
//
// Collective-operation expansion: lowers MPI collectives onto point-to-point
// send/recv ops in a goal::TaskGraph, the same role LogGOPSim's collective
// conversion plays for extrapolated traces (exact communication patterns for
// collectives, §III-C of the paper).
//
// Algorithms follow the classic implementations (MPICH/OpenMPI defaults for
// the relevant size ranges):
//   * barrier          — dissemination, ceil(log2 p) rounds, any p;
//   * allreduce        — recursive doubling with a power-of-two fold-in for
//                        non-power-of-two p; optional ring variant
//                        (reduce-scatter + allgather) for the ablation;
//   * broadcast        — binomial tree, any p, any root;
//   * reduce           — binomial tree (reverse), any p, any root;
//   * allgather        — ring, p-1 rounds, any p;
//   * alltoall         — linear shifted exchange, p-1 rounds;
//   * reduce_scatter   — ring reduce-scatter, equal block sizes.
//
// All functions append ops for EVERY rank through the per-rank
// SequentialBuilder array, so collectives compose with computation phases:
// the ops of round k+1 depend on round k's completion on each rank, and the
// caller's next op depends on the rank's final collective op.
#pragma once

#include <cstdint>
#include <span>

#include "goal/task_graph.hpp"

namespace celog::collectives {

/// Hands out non-overlapping tag ranges so concurrent collectives (and app
/// point-to-point traffic) never match each other's messages. Application
/// tags must stay below kCollectiveTagBase.
class TagAllocator {
 public:
  static constexpr goal::Tag kCollectiveTagBase = 1 << 20;

  TagAllocator() = default;

  /// Reserves `count` consecutive tags and returns the first.
  goal::Tag allocate(goal::Tag count);

 private:
  goal::Tag next_ = kCollectiveTagBase;
};

enum class AllreduceAlgorithm { kRecursiveDoubling, kRing };

/// Dissemination barrier: in round k every rank i sends a zero-payload
/// token to (i + 2^k) mod p and waits for one from (i - 2^k) mod p.
void barrier(std::span<goal::SequentialBuilder> ranks, TagAllocator& tags);

/// Allreduce of `bytes` payload on every rank.
void allreduce(std::span<goal::SequentialBuilder> ranks, std::int64_t bytes,
               TagAllocator& tags,
               AllreduceAlgorithm algorithm =
                   AllreduceAlgorithm::kRecursiveDoubling);

/// Binomial-tree broadcast of `bytes` from `root`.
void broadcast(std::span<goal::SequentialBuilder> ranks, goal::Rank root,
               std::int64_t bytes, TagAllocator& tags);

/// Binomial-tree reduce of `bytes` to `root`.
void reduce(std::span<goal::SequentialBuilder> ranks, goal::Rank root,
            std::int64_t bytes, TagAllocator& tags);

/// Ring allgather: every rank contributes `block_bytes`; p-1 rounds, each
/// forwarding one block to the right neighbor.
void allgather(std::span<goal::SequentialBuilder> ranks,
               std::int64_t block_bytes, TagAllocator& tags);

/// Linear shifted alltoall: every rank sends `block_bytes` to every other.
void alltoall(std::span<goal::SequentialBuilder> ranks,
              std::int64_t block_bytes, TagAllocator& tags);

/// Ring reduce-scatter: every rank starts with p blocks of `block_bytes`
/// and ends with one fully reduced block.
void reduce_scatter(std::span<goal::SequentialBuilder> ranks,
                    std::int64_t block_bytes, TagAllocator& tags);

/// Number of communication rounds a dissemination barrier over p ranks
/// performs: ceil(log2 p). Exposed for tests and analytic checks.
int dissemination_rounds(goal::Rank p);

}  // namespace celog::collectives
