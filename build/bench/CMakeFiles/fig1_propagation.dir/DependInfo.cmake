
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_propagation.cpp" "bench/CMakeFiles/fig1_propagation.dir/fig1_propagation.cpp.o" "gcc" "bench/CMakeFiles/fig1_propagation.dir/fig1_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/celog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/celog_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/celog_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/celog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/celog_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/celog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/goal/CMakeFiles/celog_goal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/celog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
