file(REMOVE_RECURSE
  "CMakeFiles/celog_goal.dir/task_graph.cpp.o"
  "CMakeFiles/celog_goal.dir/task_graph.cpp.o.d"
  "libcelog_goal.a"
  "libcelog_goal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celog_goal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
