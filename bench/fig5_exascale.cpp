// bench/fig5_exascale — regenerates Fig. 5: "Performance impacts of
// correctable errors for hypothetical Exascale-class systems."
//
// Five CE rates (Cielo x1/x10/x20/x100 and the Facebook median, Table II)
// on a 16,384-node, 700 GiB/node strawman machine; three logging scenarios.
// Expected shape (paper §IV-C): hardware-only negligible; software well
// below 10% everywhere; firmware significant — roughly tens of percent to
// ~100% at x10 (worst: LULESH, LAMMPS-crack), 100-1000% at x100 and the
// Facebook median for the sensitive workloads, while LAMMPS-lj/-snap never
// exceed a few percent. Conclusion: keep MTBCE_node above ~3,024-5,544 s.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "goal/generative.hpp"

namespace {

// Addendum: the same three logging scenarios on a genuine >=100K-rank
// machine. The systems tables above follow the paper's method — traces
// reduced rate-preservingly onto --ranks processes — but the generative
// graph layer holds every rank of an exascale machine directly: a
// 50x50x40 periodic halo exchange (100,000 ranks, one process per node),
// each rank drawing CEs at the system's native per-node MTBCE. One seed
// per cell; a reused RunContext keeps the sweep allocation-free after the
// first run.
void run_stencil_addendum(const celog::bench::Options& options,
                          const std::vector<celog::core::SystemConfig>& systems,
                          celog::bench::PerfJson& perf) {
  using namespace celog;
  goal::StencilSpec spec;
  spec.dims = {50, 50, 40};
  // Cover the target simulated time with coarse 500 ms halo steps so the
  // total op count stays near ten million per run (wall clock: minutes for
  // the whole 16-cell sweep at the default --sim-s).
  spec.compute_ns = 500 * kMillisecond;
  spec.iterations = static_cast<std::int32_t>(
      std::max<TimeNs>(2, options.sim_target / spec.compute_ns));
  spec.message_bytes = 4096;
  spec.jitter_ns = kMillisecond;
  spec.seed = options.base_seed;
  const goal::GenerativeGraph graph(spec);
  std::printf(
      "\n-- addendum: direct %d-rank stencil (%dx%dx%d torus, %d iterations, "
      "native per-node MTBCE, 1 seed) --\n",
      graph.ranks(), spec.dims[0], spec.dims[1], spec.dims[2],
      spec.iterations);

  const sim::Simulator simulator(graph, sim::NetworkParams::cray_xc40());
  sim::RunContext ctx;
  const sim::SimResult baseline = perf.time_cell(
      "stencil100k/baseline", [&] { return simulator.run_baseline(ctx); });

  std::vector<std::string> headers = {"logging"};
  for (const auto& sys : systems) headers.push_back(sys.name);
  TextTable table(headers);
  for (const auto mode : core::all_logging_modes()) {
    std::vector<std::string> row = {std::string(core::to_string(mode))};
    for (const auto& sys : systems) {
      const noise::UniformCeNoiseModel noise(sys.mtbce_node(),
                                             core::cost_model(mode));
      const auto noisy = perf.time_cell(
          std::string("stencil100k/") + core::to_string(mode) + "/" +
              sys.name,
          [&] {
            return simulator.run(noise, options.base_seed, ctx);
          });
      row.push_back(format_percent(sim::slowdown_percent(baseline, noisy)));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
}

// Addendum: the real Fig. 5 workloads at a genuine 100,000 ranks. The
// generative twins of LULESH and HPCG decode their task programs per-rank
// from pure arithmetic — resident bytes are O(pattern + log ranks), a few
// hundred KiB here — so the full exascale machine is simulated directly,
// one process per node at the strawman system's native per-node MTBCE.
// Firmware logging is the paper's problem scenario, so each workload runs
// baseline + firmware with one seed (the table above already sweeps every
// mode at reduced scale).
void run_workload_addendum(const celog::bench::Options& options,
                           const std::vector<celog::core::SystemConfig>& systems,
                           celog::bench::PerfJson& perf) {
  using namespace celog;
  constexpr goal::Rank kRanks = 100000;
  // The x10-Cielo-rate strawman when present (the paper's headline regime),
  // else the first system.
  const core::SystemConfig& sys = systems.size() > 1 ? systems[1] : systems[0];
  std::printf(
      "\n-- addendum: %d-rank generative workloads (native per-node MTBCE "
      "of %s, firmware logging, 1 seed) --\n",
      kRanks, sys.name.c_str());

  TextTable table({"workload", "ranks", "resident graph", "firmware"});
  for (const char* name : {"lulesh", "hpcg"}) {
    const auto workload = workloads::find_workload(name);
    workloads::WorkloadConfig config;
    config.ranks = kRanks;
    config.trace_block = 0;
    config.iterations = 2;
    config.seed = 1;
    const auto graph = workload->build_generative(config);
    const sim::Simulator simulator(*graph, sim::NetworkParams::cray_xc40());
    sim::RunContext ctx;
    const std::string cell = std::string(name) + "100k";
    const sim::SimResult baseline = perf.time_cell(
        cell + "/baseline", [&] { return simulator.run_baseline(ctx); });
    const noise::UniformCeNoiseModel noise(
        sys.mtbce_node(), core::cost_model(core::LoggingMode::kFirmware));
    const sim::SimResult noisy =
        perf.time_cell(cell + "/firmware", [&] {
          return simulator.run(noise, options.base_seed, ctx);
        });
    table.add_row({name, std::to_string(graph->ranks()),
                   std::to_string(graph->resident_bytes() / 1024) + " KiB",
                   format_percent(sim::slowdown_percent(baseline, noisy))});
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace celog;
  Cli cli("fig5_exascale: CE slowdown on hypothetical exascale systems");
  bench::add_standard_options(cli);
  cli.add_flag("no-stencil",
               "skip the direct 100K-rank generative-stencil addendum");
  cli.add_flag("no-workloads100k",
               "skip the 100K-rank generative LULESH/HPCG addendum");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;
  const bench::Options options = bench::read_standard_options(cli);
  bench::print_banner("Fig. 5: exascale-class systems", options);

  const bench::WallTimer timer;
  bench::PerfJson perf(options.json_path, "fig5_exascale");
  bench::RunnerCache cache(options);
  const auto systems = core::systems::exascale_systems();
  bench::run_systems_figure(systems, options, cache, perf);
  if (!cli.get_flag("no-stencil")) {
    run_stencil_addendum(options, systems, perf);
  }
  if (!cli.get_flag("no-workloads100k")) {
    run_workload_addendum(options, systems, perf);
  }
  perf.metric("total_wall_s", timer.seconds());

  std::printf(
      "\nexpected shape (paper Fig. 5): firmware logging is the problem —\n"
      "LULESH and LAMMPS-crack degrade worst, LAMMPS-lj/-snap barely move,\n"
      "and beyond ~x20 the sensitive workloads degrade by 100-1000%%.\n");
  return 0;
}
