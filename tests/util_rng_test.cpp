#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace celog {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the public-domain splitmix64.c.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, StreamsAreIndependent) {
  // Same base seed, different stream ids -> different sequences; same ids
  // -> identical sequences.
  Xoshiro256 s0 = Xoshiro256::for_stream(42, 0);
  Xoshiro256 s1 = Xoshiro256::for_stream(42, 1);
  Xoshiro256 s0b = Xoshiro256::for_stream(42, 0);
  EXPECT_NE(s0.next(), s1.next());
  Xoshiro256 s0c = Xoshiro256::for_stream(42, 0);
  EXPECT_EQ(s0c.next(), s0b.next());
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01OpenLowNeverZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01_open_low();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, UniformBelowCoversAllValues) {
  Xoshiro256 rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.uniform_below(8)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // each bucket near 1000
    EXPECT_LT(c, 1200);
  }
}

TEST(SampleExponential, MeanMatches) {
  Xoshiro256 rng(17);
  const TimeNs mean = seconds(2);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(sample_exponential(rng, mean));
  }
  EXPECT_NEAR(sum / n / static_cast<double>(mean), 1.0, 0.02);
}

TEST(SampleExponential, AlwaysPositive) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sample_exponential(rng, 1), 1);
  }
}

TEST(SampleExponential, MemorylessTail) {
  // P(X > mean) should be ~ e^-1 ~ 0.368.
  Xoshiro256 rng(23);
  const TimeNs mean = milliseconds(10);
  int over = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sample_exponential(rng, mean) > mean) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / n, 0.3679, 0.01);
}

TEST(SampleUniform, CoversRangeInclusive) {
  Xoshiro256 rng(29);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const TimeNs v = sample_uniform(rng, 5, 8);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 8);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(SampleUniform, DegenerateRange) {
  Xoshiro256 rng(31);
  EXPECT_EQ(sample_uniform(rng, 7, 7), 7);
}

TEST(SampleUniform, NegativeRange) {
  Xoshiro256 rng(37);
  for (int i = 0; i < 1000; ++i) {
    const TimeNs v = sample_uniform(rng, -10, 10);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, 10);
  }
}

}  // namespace
}  // namespace celog
