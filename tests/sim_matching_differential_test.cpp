// Differential tests of the engine's matching implementations: the
// production hash-bucketed FIFO matcher (MatcherKind::kBucketed) against
// the retained linear-scan reference (MatcherKind::kReference) — the seed
// engine's executable specification. Because the engine models only
// exact-key (src, tag) matching with FIFO order among equal keys, the two
// must produce bit-identical SimResults on EVERY input; these tests sweep
// >100 randomized (graph, seed) combinations mixing eager and rendezvous
// transfers, shallow ring traffic, and deep detached-recv queues, under
// both the noise-free fast path and the RankNoise path.
//
// Also covered here: equivalence of the devirtualized noise-free fast path
// (NoNoiseModel -> PassthroughNoise) with the general RankNoise path over a
// null detour stream, the deadlock diagnostics for stranded unexpected
// messages and sends stuck waiting on CTS, and the run-context reuse axis:
// a sim::RunContext recycled across seeds, noise models, matchers, aborted
// runs, and graph changes must reproduce fresh-context results bit-for-bit
// (the ISSUE-4 zero-allocation sweep path).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "goal/task_graph.hpp"
#include "noise/detour.hpp"
#include "noise/noise_model.hpp"
#include "sim/engine.hpp"
#include "sim/run_context.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace celog::sim {
namespace {

using goal::Rank;
using goal::SequentialBuilder;
using goal::TaskGraph;

/// Random-but-valid communication graph. Each iteration: random per-rank
/// compute, a ring exchange with a random shift (every send has its recv),
/// and message sizes drawn across the eager/rendezvous boundary (cray_xc40
/// S = 8 KiB). When `deep` is set, each rank additionally pre-posts a block
/// of detached recvs that its left neighbor serves in reverse tag order —
/// the deep-queue pattern where linear-scan and bucketed matching diverge
/// most in cost (and must not diverge at all in results).
TaskGraph random_graph(Rank ranks, int iters, std::uint64_t seed,
                       bool deep) {
  TaskGraph g(ranks);
  Xoshiro256 rng(seed);
  std::vector<SequentialBuilder> builders;
  builders.reserve(static_cast<std::size_t>(ranks));
  for (Rank r = 0; r < ranks; ++r) builders.emplace_back(g, r);

  if (deep) {
    const int depth = 8 + static_cast<int>(rng.uniform_below(25));
    std::vector<std::vector<goal::OpId>> pending(
        static_cast<std::size_t>(ranks));
    for (Rank r = 0; r < ranks; ++r) {
      auto& b = builders[static_cast<std::size_t>(r)];
      const Rank left = (r - 1 + ranks) % ranks;
      for (int d = 0; d < depth; ++d) {
        pending[static_cast<std::size_t>(r)].push_back(
            b.detached_recv(left, 64, 1000 + d));
      }
    }
    for (Rank r = 0; r < ranks; ++r) {
      auto& b = builders[static_cast<std::size_t>(r)];
      b.calc(static_cast<TimeNs>(rng.uniform_below(5000)));
      const Rank right = (r + 1) % ranks;
      for (int d = depth - 1; d >= 0; --d) b.send(right, 64, 1000 + d);
    }
    for (Rank r = 0; r < ranks; ++r) {
      auto& b = builders[static_cast<std::size_t>(r)];
      for (const goal::OpId id : pending[static_cast<std::size_t>(r)]) {
        b.join(id);
      }
    }
  }

  for (int it = 0; it < iters; ++it) {
    for (Rank r = 0; r < ranks; ++r) {
      builders[static_cast<std::size_t>(r)].calc(
          static_cast<TimeNs>(rng.uniform_below(100000)));
    }
    const Rank shift = static_cast<Rank>(
        1 + rng.uniform_below(static_cast<std::uint64_t>(ranks - 1)));
    // Sizes straddle the 8 KiB eager threshold so both the eager and the
    // RTS/CTS rendezvous protocol run through the matcher.
    const auto bytes = static_cast<std::int64_t>(rng.uniform_below(20000));
    for (Rank r = 0; r < ranks; ++r) {
      auto& b = builders[static_cast<std::size_t>(r)];
      b.begin_phase();
      b.send((r + shift) % ranks, bytes, it);
      b.recv((r - shift + ranks) % ranks, bytes, it);
      b.end_phase();
    }
  }
  g.finalize();
  return g;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.rank_finish, b.rank_finish) << what;
  EXPECT_EQ(a.data_messages, b.data_messages) << what;
  EXPECT_EQ(a.control_messages, b.control_messages) << what;
  EXPECT_EQ(a.noise_stolen, b.noise_stolen) << what;
  EXPECT_EQ(a.detours_charged, b.detours_charged) << what;
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
}

class MatcherDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Rank, std::uint64_t>> {};

// 6 rank counts x 10 seeds x 2 graph shapes = 120 randomized (graph, seed)
// combinations, each checked field-by-field on the noise-free path.
TEST_P(MatcherDifferentialTest, BaselineBitIdenticalAcrossMatchers) {
  const auto [ranks, seed] = GetParam();
  for (const bool deep : {false, true}) {
    const TaskGraph g = random_graph(ranks, 4, seed, deep);
    Simulator sim(g, NetworkParams::cray_xc40());
    sim.set_matcher(MatcherKind::kReference);
    const SimResult ref = sim.run_baseline();
    sim.set_matcher(MatcherKind::kBucketed);
    const SimResult opt = sim.run_baseline();
    expect_identical(ref, opt,
                     deep ? "deep baseline" : "shallow baseline");
  }
}

// The same sweep under CE noise exercises the RankNoise instantiations of
// both matchers (noise_stolen / detours_charged must agree too).
TEST_P(MatcherDifferentialTest, NoisyRunBitIdenticalAcrossMatchers) {
  const auto [ranks, seed] = GetParam();
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(5)));
  for (const bool deep : {false, true}) {
    const TaskGraph g = random_graph(ranks, 4, seed, deep);
    Simulator sim(g, NetworkParams::cray_xc40());
    sim.set_matcher(MatcherKind::kReference);
    const SimResult ref = sim.run(noise, seed + 17);
    sim.set_matcher(MatcherKind::kBucketed);
    const SimResult opt = sim.run(noise, seed + 17);
    expect_identical(ref, opt, deep ? "deep noisy" : "shallow noisy");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatcherDifferentialTest,
    ::testing::Combine(::testing::Values<Rank>(2, 3, 8, 16, 17, 32),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8, 9, 10)));

/// A noise model that is NOT NoNoiseModel but emits no detours: forces the
/// general RankNoise path over a null stream, which the devirtualized
/// fast path (PassthroughNoise) must reproduce exactly.
class NullStreamModel final : public noise::NoiseModel {
 public:
  std::unique_ptr<noise::DetourSource> make_source(
      noise::RankId, std::uint64_t) const override {
    return std::make_unique<noise::NullDetourSource>();
  }
};

TEST(NoiseFastPath, MatchesRankNoiseOverNullStream) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const bool deep : {false, true}) {
      const TaskGraph g = random_graph(16, 4, seed, deep);
      const Simulator sim(g, NetworkParams::cray_xc40());
      const SimResult fast = sim.run_baseline();  // PassthroughNoise path
      const SimResult general = sim.run(NullStreamModel{}, seed);
      expect_identical(fast, general, "fast path vs RankNoise");
    }
  }
}

// ---------------------------------------------------------------------------
// Run-context reuse. The determinism contract extends to the reusable
// context: every run through a recycled sim::RunContext must be
// bit-identical to the same run through a fresh one.

TEST(ContextReuse, SweepBitIdenticalToFreshContexts) {
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(5)));
  for (const MatcherKind matcher :
       {MatcherKind::kReference, MatcherKind::kBucketed}) {
    for (const bool deep : {false, true}) {
      const TaskGraph g = random_graph(12, 4, 99, deep);
      Simulator sim(g, NetworkParams::cray_xc40());
      sim.set_matcher(matcher);
      RunContext ctx;  // reused across every seed and both run kinds below
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        expect_identical(sim.run(noise, seed), sim.run(noise, seed, ctx),
                         "noisy seed " + std::to_string(seed));
        // Alternating in baseline runs flips the context between the
        // RankNoise and PassthroughNoise engine instantiations; the
        // context must adopt matching state on every flip.
        expect_identical(sim.run_baseline(), sim.run_baseline(ctx),
                         "baseline after seed " + std::to_string(seed));
      }
    }
  }
}

TEST(ContextReuse, ReseedAndFallbackAcrossNoiseModels) {
  const TaskGraph g = random_graph(8, 3, 7, false);
  const Simulator sim(g, NetworkParams::cray_xc40());
  const auto cost_a =
      std::make_shared<noise::FlatLoggingCost>(microseconds(5));
  const auto cost_b =
      std::make_shared<noise::FlatLoggingCost>(microseconds(50));
  const noise::UniformCeNoiseModel uniform_a(microseconds(500), cost_a);
  const noise::UniformCeNoiseModel uniform_b(microseconds(300), cost_b);
  const noise::SingleRankCeNoiseModel single(3, microseconds(200), cost_a);
  std::vector<noise::Detour> trace;
  for (int i = 0; i < 16; ++i) {
    trace.push_back(
        {static_cast<TimeNs>(i) * microseconds(40), microseconds(3)});
  }
  const noise::TraceReplayNoiseModel replay(trace, milliseconds(1), true);
  const NullStreamModel null_stream;

  // Cycling ONE context through this model sequence exercises every
  // reseed_source outcome: same-type-same-params (in-place reseed),
  // same-type-different-params and different-type (decline, so the engine
  // falls back to make_source), plus the reseed-declining base model.
  const std::vector<const noise::NoiseModel*> models = {
      &uniform_a, &uniform_b, &single, &replay, &null_stream};
  RunContext ctx;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto seed =
          static_cast<std::uint64_t>(100 + round * 10 + static_cast<int>(m));
      expect_identical(sim.run(*models[m], seed),
                       sim.run(*models[m], seed, ctx),
                       "model " + std::to_string(m) + " round " +
                           std::to_string(round));
    }
  }
}

TEST(ContextReuse, ReusableAfterNoProgressError) {
  const TaskGraph g = random_graph(6, 3, 21, false);
  const Simulator sim(g, NetworkParams::cray_xc40());
  // One colossal detour at t=0 on every rank: the run blows any sane
  // horizon immediately and unwinds mid-drain, leaving events, pool slots,
  // and per-rank bookkeeping behind in the context.
  const noise::TraceReplayNoiseModel bomb({{0, seconds(100000)}},
                                          seconds(200000), false);
  const noise::UniformCeNoiseModel clean(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(5)));
  RunContext ctx;
  for (int round = 0; round < 2; ++round) {
    EXPECT_THROW(
        static_cast<void>(sim.run(bomb, 1, ctx, milliseconds(1))),
        NoProgressError);
    expect_identical(sim.run(clean, 42), sim.run(clean, 42, ctx),
                     "clean run after no-progress, round " +
                         std::to_string(round));
  }
}

TEST(ContextReuse, RebindsAcrossGraphChanges) {
  const noise::UniformCeNoiseModel noise(
      microseconds(500),
      std::make_shared<noise::FlatLoggingCost>(microseconds(5)));
  // Different rank counts, plus two distinct graphs with the SAME rank
  // count: rebind detection keys on graph identity, not just size.
  const TaskGraph graphs[] = {
      random_graph(4, 3, 1, false), random_graph(16, 3, 2, true),
      random_graph(9, 3, 3, false), random_graph(9, 3, 4, false)};
  RunContext ctx;
  for (const TaskGraph& g : graphs) {
    const Simulator sim(g, NetworkParams::cray_xc40());
    expect_identical(sim.run(noise, 5), sim.run(noise, 5, ctx),
                     "rebind to " + std::to_string(g.ranks()) + " ranks");
  }
}

#ifndef NDEBUG
TEST(ContextReuseDeathTest, SharedInFlightContextAborts) {
  const TaskGraph g = random_graph(4, 2, 1, false);
  const Simulator sim(g, NetworkParams::cray_xc40());
  const noise::NoNoiseModel noise;
  RunContext ctx;
  // Re-entering the SAME context from an op-completion callback is two
  // in-flight runs by definition; Debug builds must abort, not corrupt.
  EXPECT_DEATH(static_cast<void>(sim.run(
                   noise, 0, ctx, noise::RankNoise::kNoHorizon,
                   [&](goal::Rank, goal::OpIndex, TimeNs) {
                     static_cast<void>(sim.run_baseline(ctx));
                   })),
               "RunContext shared by two in-flight runs");
}
#endif

TEST(DeadlockDiagnostics, ReportsStrandedUnexpectedAndStuckCts) {
  // Rank 0 issues a rendezvous-size send that rank 1 never receives: the
  // RTS strands in rank 1's unexpected queue and the send waits on a CTS
  // that never comes. Both must show up in the deadlock message.
  TaskGraph g(2);
  {
    SequentialBuilder b0(g, 0);
    b0.send(1, 1 << 20, 7);
    SequentialBuilder b1(g, 1);
    b1.calc(100);
  }
  g.finalize();
  const Simulator sim(g, NetworkParams::cray_xc40());
  try {
    sim.run_baseline();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unexpected message"), std::string::npos) << msg;
    EXPECT_NE(msg.find("never received"), std::string::npos) << msg;
    EXPECT_NE(msg.find("waiting on CTS"), std::string::npos) << msg;
  }
}

TEST(DeadlockDiagnostics, StillReportsUnmatchedPostedRecvs) {
  TaskGraph g(2);
  {
    SequentialBuilder b0(g, 0);
    b0.recv(1, 64, 3);
    SequentialBuilder b1(g, 1);
    b1.calc(100);
  }
  g.finalize();
  const Simulator sim(g, NetworkParams::cray_xc40());
  try {
    sim.run_baseline();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("recv op"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unmatched"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace celog::sim
