file(REMOVE_RECURSE
  "CMakeFiles/celog_util.dir/cli.cpp.o"
  "CMakeFiles/celog_util.dir/cli.cpp.o.d"
  "CMakeFiles/celog_util.dir/stats.cpp.o"
  "CMakeFiles/celog_util.dir/stats.cpp.o.d"
  "CMakeFiles/celog_util.dir/table.cpp.o"
  "CMakeFiles/celog_util.dir/table.cpp.o.d"
  "CMakeFiles/celog_util.dir/time.cpp.o"
  "CMakeFiles/celog_util.dir/time.cpp.o.d"
  "libcelog_util.a"
  "libcelog_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celog_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
