file(REMOVE_RECURSE
  "CMakeFiles/noise_rank_noise_test.dir/noise_rank_noise_test.cpp.o"
  "CMakeFiles/noise_rank_noise_test.dir/noise_rank_noise_test.cpp.o.d"
  "noise_rank_noise_test"
  "noise_rank_noise_test.pdb"
  "noise_rank_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_rank_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
