// celog/server/daemon.hpp
//
// celogd's event loop: a single poll(2) thread owns every socket — accept,
// line framing, admission control, and all writes — while a small worker
// pool executes admitted sweeps against the shared RunnerRegistry. The
// split keeps the protocol layer strictly sequential per connection
// (requests on one connection are admitted in arrival order, and the
// quota/queue decisions for a batch of lines that arrive in one read are
// deterministic) while sweeps run concurrently across connections.
//
// Backpressure, both directions:
//   * inbound  — a connection whose output buffer is above the high-water
//     mark stops being polled for reads, so a client that will not drain
//     responses cannot pump more requests in;
//   * outbound — a worker appending response bytes blocks once the buffer
//     hits the hard cap, until the loop flushes some or the peer is gone.
//     A vanished peer (EPIPE on flush) flips the connection to `closed`;
//     the worker's next append fails and the sweep's remaining output is
//     abandoned rather than buffered for nobody.
//
// Shutdown is a drain, not an abort: request_drain() (or one byte written
// to drain_fd() from a signal handler — write(2) is async-signal-safe)
// stops accepting connections and admitting sweeps, but every admitted
// request still runs to completion and its response is fully flushed
// before run() closes the sockets and returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/runner_registry.hpp"
#include "util/annotations.hpp"
#include "util/net.hpp"

namespace celog::server {

struct DaemonConfig {
  /// Sweep worker threads. Each runs one admitted request at a time; a
  /// request's own seed-level parallelism comes on top via --jobs.
  int workers = 2;
  /// Bound on requests admitted but not yet started (across all clients).
  std::size_t max_queue = 64;
  /// Per-connection cap on requests admitted but not yet completed.
  int quota = 4;
  std::size_t max_connections = 64;
  /// Longest accepted request line (incl. the newline).
  std::size_t max_line = kMaxRequestLine;
  /// Output buffer level above which a connection stops being read.
  std::size_t out_hiwater = std::size_t{1} << 20;
  /// Output buffer hard cap at which workers block appending.
  std::size_t out_cap = std::size_t{4} << 20;
  /// Ceiling on a request's --jobs (the daemon, not the client, owns the
  /// box's thread budget).
  int jobs_cap = 8;
  /// Path of a fleetdb::MemDb dump served by the `memdb` verb ("" =
  /// unconfigured; the verb answers a "no-memdb" error). Loaded lazily on
  /// the first request and cached — the daemon serves a snapshot, not a
  /// live view, so the response bytes for one daemon lifetime are stable.
  std::string memdb_path;
};

class Daemon {
 public:
  /// Monotonic event counts, readable from any thread via counters().
  struct CountersSnapshot {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests_admitted = 0;
    std::uint64_t requests_completed = 0;
    std::uint64_t rejected_parse = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t rejected_queue = 0;
    std::uint64_t rejected_draining = 0;
    std::uint64_t disconnects_mid_request = 0;
  };

  /// Takes ownership of already-listening sockets (see util::listen_unix /
  /// util::listen_tcp); the daemon accepts on all of them.
  explicit Daemon(std::vector<util::ScopedFd> listeners,
                  DaemonConfig config = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a drain is requested and every admitted request has been
  /// executed and flushed. Call from one thread only.
  void run();

  /// Asks run() to drain and return. Safe from any thread.
  void request_drain();

  /// The wake pipe's write end: writing one byte 'q' here is the
  /// async-signal-safe equivalent of request_drain(), for SIGTERM/SIGINT
  /// handlers.
  int drain_fd() const { return wake_w_.get(); }

  CountersSnapshot counters() const;

 private:
  struct Connection {
    util::ScopedFd fd;
    // Loop-thread-only state. `inflight` in particular is only ever
    // touched by the loop (workers report completion through done_), which
    // is what makes quota decisions deterministic for a burst of lines
    // arriving in one read.
    std::string in_buf;
    bool skipping_long_line = false;
    int inflight = 0;
    bool peer_eof = false;
    // Shared with workers, guarded by mu.
    util::Mutex mu;
    std::condition_variable_any space_cv;
    std::string out CELOG_GUARDED_BY(mu);
    // Bytes of `out` already written.
    std::size_t out_off CELOG_GUARDED_BY(mu) = 0;
    // Peer gone, discard output.
    bool closed CELOG_GUARDED_BY(mu) = false;
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    SweepRequest req;
  };

  // Loop-thread protocol handling.
  void accept_on(int listener_fd);
  void read_conn(const std::shared_ptr<Connection>& conn);
  void ingest(const std::shared_ptr<Connection>& conn, std::string_view data);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   std::string_view line);
  void enqueue_output(Connection& conn, std::string_view data);
  void flush_conn(Connection& conn);
  void drain_wake_pipe();
  void process_completions();
  void begin_drain();
  bool drain_complete() const;

  // Worker side.
  void worker_main();
  void execute(const Job& job);
  bool append_output(Connection& conn, std::string_view data);
  void wake();

  std::string stats_line(std::int64_t id) const;
  /// Response for the `memdb` verb (loop thread only; caches the summary
  /// after the first successful load).
  std::string memdb_response(std::int64_t id);

  DaemonConfig config_;
  std::vector<util::ScopedFd> listeners_;
  util::ScopedFd wake_r_;
  util::ScopedFd wake_w_;
  RunnerRegistry registry_;

  // Loop-thread-only.
  std::vector<std::shared_ptr<Connection>> conns_;
  bool draining_ = false;
  bool memdb_loaded_ = false;
  fleetdb::MemDbSummary memdb_summary_;

  // Request queue (loop -> workers). Mutable: const observers
  // (drain_complete, stats_line) read the depth under the lock.
  mutable util::Mutex queue_mu_;
  std::condition_variable_any queue_cv_;
  std::deque<Job> queue_ CELOG_GUARDED_BY(queue_mu_);
  bool workers_stop_ CELOG_GUARDED_BY(queue_mu_) = false;
  std::vector<std::thread> workers_;

  // Completion queue (workers -> loop): the loop decrements `inflight`.
  util::Mutex done_mu_;
  std::vector<std::shared_ptr<Connection>> done_ CELOG_GUARDED_BY(done_mu_);

  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> requests_admitted{0};
    std::atomic<std::uint64_t> requests_completed{0};
    std::atomic<std::uint64_t> rejected_parse{0};
    std::atomic<std::uint64_t> rejected_quota{0};
    std::atomic<std::uint64_t> rejected_queue{0};
    std::atomic<std::uint64_t> rejected_draining{0};
    std::atomic<std::uint64_t> disconnects_mid_request{0};
  };
  mutable Counters counters_;
};

}  // namespace celog::server
