file(REMOVE_RECURSE
  "CMakeFiles/sim_rendezvous_test.dir/sim_rendezvous_test.cpp.o"
  "CMakeFiles/sim_rendezvous_test.dir/sim_rendezvous_test.cpp.o.d"
  "sim_rendezvous_test"
  "sim_rendezvous_test.pdb"
  "sim_rendezvous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_rendezvous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
