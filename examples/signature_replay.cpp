// examples/signature_replay.cpp
//
// Bridges the paper's two experimental layers: take the node-level detour
// signature that the selfish measurement produces (§IV-A / Fig. 2) and
// replay it as machine-wide noise in the application simulation (§IV-C),
// instead of assuming a Poisson CE process.
//
//   1. synthesize a selfish trace for a chosen reporting mode (background
//      OS noise + CE injections);
//   2. replay it on every rank, rotated per rank so nodes are not in
//      lockstep;
//   3. compare the resulting slowdown against the analytic Poisson model
//      at the same CE rate.
//
// This is the path you would use with REAL selfish traces captured on your
// own cluster: parse them into noise::Detour vectors and hand them to
// TraceReplayNoiseModel.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/logging_mode.hpp"
#include "noise/noise_model.hpp"
#include "noise/selfish.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace celog;
  Cli cli("signature_replay: replay a selfish signature as machine noise");
  cli.add_option("workload", "lulesh", "workload to perturb");
  cli.add_option("ranks", "64", "simulated ranks");
  cli.add_option("inject-s", "2", "seconds between CEs in the signature");
  cli.add_option("seeds", "3", "replay rotations / Poisson seeds to average");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const auto workload = workloads::find_workload(cli.get("workload"));
  workloads::WorkloadConfig config;
  config.ranks = static_cast<goal::Rank>(cli.get_int("ranks"));
  config.iterations = workload->iterations_for(4 * kSecond);
  const core::ExperimentRunner runner(*workload, config);
  const TimeNs window = runner.baseline().makespan;
  const TimeNs inject = from_seconds(cli.get_double("inject-s"));
  const auto seeds = static_cast<int>(cli.get_int("seeds"));

  std::printf("%s on %d ranks, baseline %s; one CE per node every %s\n\n",
              workload->name().c_str(), config.ranks,
              format_duration(window).c_str(),
              format_duration(inject).c_str());

  std::printf("%-18s  %-22s  %s\n", "reporting mode", "signature replay",
              "Poisson model");
  struct Case {
    noise::ReportingMode signature_mode;
    core::LoggingMode logging_mode;
  };
  for (const Case c : {Case{noise::ReportingMode::kSoftwareCmci,
                            core::LoggingMode::kSoftware},
                       Case{noise::ReportingMode::kFirmwareEmca,
                            core::LoggingMode::kFirmware}}) {
    // 1. synthesize the node signature over the run window.
    noise::SelfishConfig sconfig;
    sconfig.window = window + inject;  // cover the whole run
    sconfig.injection_period = inject;
    sconfig.mode = c.signature_mode;
    const auto trace = noise::run_selfish(sconfig, /*seed=*/7);

    // 2. replay it on every rank (rotated per rank).
    const noise::TraceReplayNoiseModel replay(trace, sconfig.window,
                                              /*rotate_per_rank=*/true);
    const auto replay_result = runner.measure(replay, seeds);

    // 3. the analytic counterpart: Poisson CEs at the same rate and cost.
    const noise::UniformCeNoiseModel poisson(inject,
                                             core::cost_model(c.logging_mode));
    const auto poisson_result = runner.measure(poisson, seeds);

    std::printf("%-18s  %7s%% (+-%.3f)      %7s%% (+-%.3f)\n",
                noise::to_string(c.signature_mode),
                format_percent(replay_result.mean_pct).c_str(),
                replay_result.stderr_pct,
                format_percent(poisson_result.mean_pct).c_str(),
                poisson_result.stderr_pct);
  }
  std::printf(
      "\nthe replayed signature also carries the node's background OS noise\n"
      "(timer ticks, scheduler passes), so its slowdown is a superset of\n"
      "the pure CE effect the Poisson column isolates.\n");
  return 0;
}
