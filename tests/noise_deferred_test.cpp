#include "noise/deferred.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "collectives/collectives.hpp"
#include "goal/task_graph.hpp"
#include "sim/engine.hpp"

namespace celog::noise {
namespace {

DeferredLoggingConfig test_config() {
  DeferredLoggingConfig c;
  c.mtbce = milliseconds(100);
  c.correction_cost = 150;
  c.flush_period = seconds(1);
  c.flush_base = milliseconds(7);
  c.per_record = milliseconds(1);
  return c;
}

TEST(DeferredLoggingSource, ArrivalsAreNondecreasing) {
  DeferredLoggingSource source(test_config(), 0, Xoshiro256(1));
  TimeNs prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const TimeNs next = source.peek_arrival();
    EXPECT_GE(next, prev);
    source.pop();
    prev = next;
  }
}

TEST(DeferredLoggingSource, FlushCostCountsPendingRecords) {
  // Deterministic check: make CEs essentially never arrive so the flush is
  // pure base cost.
  DeferredLoggingConfig config = test_config();
  config.mtbce = kYear;
  DeferredLoggingSource source(config, 0, Xoshiro256(1));
  const Detour flush = source.pop();
  EXPECT_EQ(flush.arrival, seconds(1));
  EXPECT_EQ(flush.duration, milliseconds(7));  // zero records
}

TEST(DeferredLoggingSource, RecordsAccumulateBetweenFlushes) {
  DeferredLoggingSource source(test_config(), 0, Xoshiro256(2));
  std::uint64_t corrections = 0;
  for (;;) {
    const TimeNs arrival = source.peek_arrival();
    const Detour d = source.pop();
    if (arrival == seconds(1)) {
      // First flush: cost must equal base + corrections seen so far.
      EXPECT_EQ(d.duration,
                milliseconds(7) +
                    static_cast<TimeNs>(corrections) * milliseconds(1));
      EXPECT_GT(corrections, 0u);  // ~10 expected at MTBCE 100 ms
      break;
    }
    EXPECT_EQ(d.duration, 150);
    ++corrections;
  }
  EXPECT_EQ(source.pending_records(), 0u);
}

TEST(DeferredLoggingSource, PhaseShiftsFirstFlush) {
  DeferredLoggingConfig config = test_config();
  config.mtbce = kYear;
  DeferredLoggingSource source(config, milliseconds(250), Xoshiro256(1));
  EXPECT_EQ(source.pop().arrival, milliseconds(250));
  EXPECT_EQ(source.pop().arrival, milliseconds(250) + seconds(1));
}

TEST(DeferredLoggingModel, SynchronizedRanksFlushTogether) {
  DeferredLoggingConfig config = test_config();
  config.mtbce = kYear;
  config.synchronized = true;
  const DeferredLoggingNoiseModel model(config);
  auto a = model.make_source(0, 7);
  auto b = model.make_source(5, 7);
  EXPECT_EQ(a->pop().arrival, b->pop().arrival);
}

TEST(DeferredLoggingModel, UnsynchronizedRanksDiffer) {
  DeferredLoggingConfig config = test_config();
  config.mtbce = kYear;
  config.synchronized = false;
  const DeferredLoggingNoiseModel model(config);
  auto a = model.make_source(0, 7);
  auto b = model.make_source(5, 7);
  EXPECT_NE(a->pop().arrival, b->pop().arrival);
}

TEST(DeferredLoggingModel, MeanOverheadFraction) {
  // 10 CEs/s: corrections 10*150ns = 1.5e-6; flushes (7ms + 10*1ms)/1s =
  // 1.7e-2.
  const DeferredLoggingNoiseModel model(test_config());
  EXPECT_NEAR(model.mean_overhead_fraction(), 0.017, 0.0005);
}

TEST(DeferredLoggingModel, BeatsSynchronousLoggingUnderLoad) {
  // A fully synchronized BSP loop under (a) synchronous firmware logging
  // and (b) deferred logging at the same CE rate: deferring must win big.
  goal::TaskGraph g(16);
  collectives::TagAllocator tags;
  std::vector<goal::SequentialBuilder> b;
  b.reserve(16);
  for (goal::Rank r = 0; r < 16; ++r) b.emplace_back(g, r);
  for (int it = 0; it < 100; ++it) {
    for (auto& builder : b) builder.calc(milliseconds(10));
    collectives::barrier({b.data(), b.size()}, tags);
  }
  g.finalize();
  sim::Simulator sim(g, sim::NetworkParams::cray_xc40());
  const auto base = sim.run_baseline();

  const TimeNs mtbce = milliseconds(500);
  const UniformCeNoiseModel synchronous(
      mtbce, std::make_shared<FlatLoggingCost>(costs::kFirmwareEmca));
  DeferredLoggingConfig config = test_config();
  config.mtbce = mtbce;
  const DeferredLoggingNoiseModel deferred(config);

  const double sync_pct =
      sim::slowdown_percent(base, sim.run(synchronous, 3));
  const double deferred_pct =
      sim::slowdown_percent(base, sim.run(deferred, 3));
  EXPECT_GT(sync_pct, 10.0 * std::max(deferred_pct, 0.1));
}

}  // namespace
}  // namespace celog::noise
