file(REMOVE_RECURSE
  "libcelog_sim.a"
)
