file(REMOVE_RECURSE
  "CMakeFiles/celog_workloads.dir/cth.cpp.o"
  "CMakeFiles/celog_workloads.dir/cth.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/hpcg.cpp.o"
  "CMakeFiles/celog_workloads.dir/hpcg.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/lammps.cpp.o"
  "CMakeFiles/celog_workloads.dir/lammps.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/lulesh.cpp.o"
  "CMakeFiles/celog_workloads.dir/lulesh.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/milc.cpp.o"
  "CMakeFiles/celog_workloads.dir/milc.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/minife.cpp.o"
  "CMakeFiles/celog_workloads.dir/minife.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/patterns.cpp.o"
  "CMakeFiles/celog_workloads.dir/patterns.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/sparc.cpp.o"
  "CMakeFiles/celog_workloads.dir/sparc.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/topology.cpp.o"
  "CMakeFiles/celog_workloads.dir/topology.cpp.o.d"
  "CMakeFiles/celog_workloads.dir/workload.cpp.o"
  "CMakeFiles/celog_workloads.dir/workload.cpp.o.d"
  "libcelog_workloads.a"
  "libcelog_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celog_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
