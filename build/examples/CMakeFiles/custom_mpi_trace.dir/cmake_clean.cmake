file(REMOVE_RECURSE
  "CMakeFiles/custom_mpi_trace.dir/custom_mpi_trace.cpp.o"
  "CMakeFiles/custom_mpi_trace.dir/custom_mpi_trace.cpp.o.d"
  "custom_mpi_trace"
  "custom_mpi_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_mpi_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
