// celog/noise/deferred.hpp
//
// Deferred (batched) CE logging — the mitigation the paper's conclusions
// point at: per-event decode+log cost is what hurts (§IV-E), so instead of
// decoding every CE synchronously (775 us software / 133 ms firmware), let
// hardware count and correct CEs at negligible cost and flush the
// accumulated log periodically in one batch. The flush pays a fixed entry
// cost plus a small amortized per-record cost, and — because flushes are
// scheduled rather than error-driven — they can additionally be
// SYNCHRONIZED across nodes so the whole machine takes the detour at once
// (the classic noise-coordination result: coscheduled noise does not
// propagate).
//
// DeferredLoggingSource emits:
//   * one `correction_cost` detour per CE (the 150 ns hardware path), and
//   * one flush detour every `flush_period`, costing
//     flush_base + pending_events * per_record.
#pragma once

#include <cstdint>
#include <memory>

#include "noise/detour.hpp"
#include "noise/noise_model.hpp"

namespace celog::noise {

struct DeferredLoggingConfig {
  /// Mean time between CEs on a node.
  TimeNs mtbce = kSecond;
  /// Hardware correction cost per CE (paper: 150 ns).
  TimeNs correction_cost = costs::kHardwareOnly;
  /// Time between log flushes.
  TimeNs flush_period = 10 * kSecond;
  /// Fixed cost of entering the flush path (e.g. one SMI: ~7 ms).
  TimeNs flush_base = costs::kMeasuredSmi;
  /// Amortized decode+log cost per buffered CE record.
  TimeNs per_record = kMillisecond;
  /// When true, every node flushes at the same instants (coordinated
  /// logging); when false, each node's flush phase is a per-(rank, seed)
  /// random offset.
  bool synchronized = false;
};

/// Detour stream for one rank under deferred logging.
class DeferredLoggingSource final : public DetourSource {
 public:
  /// `flush_phase` shifts the first flush into [0, flush_period).
  DeferredLoggingSource(const DeferredLoggingConfig& config,
                        TimeNs flush_phase, Xoshiro256 rng);

  TimeNs peek_arrival() const override;
  Detour pop() override;

  std::uint64_t pending_records() const { return pending_; }

 private:
  DeferredLoggingConfig config_;
  Xoshiro256 rng_;
  TimeNs next_ce_;
  TimeNs next_flush_;
  std::uint64_t pending_ = 0;
};

/// Machine-wide deferred-logging noise model.
class DeferredLoggingNoiseModel final : public NoiseModel {
 public:
  explicit DeferredLoggingNoiseModel(DeferredLoggingConfig config);

  std::unique_ptr<DetourSource> make_source(RankId rank,
                                            std::uint64_t run_seed) const override;

  const DeferredLoggingConfig& config() const { return config_; }

  /// Mean CPU fraction consumed by deferred logging (corrections +
  /// amortized flushes) — the analytic lower bound on slowdown.
  double mean_overhead_fraction() const;

 private:
  DeferredLoggingConfig config_;
};

}  // namespace celog::noise
