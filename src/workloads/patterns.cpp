#include "workloads/patterns.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace celog::workloads {

using goal::Rank;

Rank effective_block(const WorkloadConfig& config) {
  if (config.trace_block <= 0) return config.ranks;
  return std::min(config.trace_block, config.ranks);
}

BuildContext::BuildContext(goal::TaskGraph& graph, std::uint64_t seed) {
  const Rank p = graph.ranks();
  builders_.reserve(static_cast<std::size_t>(p));
  rngs_.reserve(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    builders_.emplace_back(graph, r);
    rngs_.push_back(Xoshiro256::for_stream(seed, static_cast<std::uint64_t>(r)));
  }
}

std::vector<double> BuildContext::persistent_imbalance(double imbalance) {
  CELOG_ASSERT_MSG(imbalance >= 0.0 && imbalance < 1.0,
                   "imbalance must be in [0, 1)");
  std::vector<double> factors(static_cast<std::size_t>(ranks()));
  for (Rank r = 0; r < ranks(); ++r) {
    const double u = rng(r).uniform01() * 2.0 - 1.0;  // [-1, 1)
    factors[static_cast<std::size_t>(r)] = 1.0 + imbalance * u;
  }
  return factors;
}

TimeNs jittered_compute(Xoshiro256& rng, TimeNs nominal, double factor,
                        double jitter) {
  CELOG_ASSERT_MSG(nominal >= 0, "compute time must be non-negative");
  CELOG_ASSERT_MSG(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  const double u = rng.uniform01() * 2.0 - 1.0;  // [-1, 1)
  const double scaled =
      static_cast<double>(nominal) * factor * (1.0 + jitter * u);
  return std::max<TimeNs>(1, static_cast<TimeNs>(scaled));
}

void compute_phase(BuildContext& ctx, TimeNs nominal,
                   std::span<const double> imbalance, double jitter) {
  CELOG_ASSERT_MSG(imbalance.size() ==
                       static_cast<std::size_t>(ctx.ranks()),
                   "need one imbalance factor per rank");
  for (Rank r = 0; r < ctx.ranks(); ++r) {
    const double factor = imbalance[static_cast<std::size_t>(r)];
    ctx.builder(r).calc(jittered_compute(ctx.rng(r), nominal, factor, jitter));
  }
}

void halo_exchange(BuildContext& ctx, const NeighborLists& neighbors) {
  CELOG_ASSERT_MSG(neighbors.ranks() == ctx.ranks(),
                   "neighbor lists must cover every rank");
  const goal::Tag tag = ctx.tags().allocate(1);
  for (Rank r = 0; r < ctx.ranks(); ++r) {
    const auto& links = neighbors.links[static_cast<std::size_t>(r)];
    if (links.empty()) continue;
    auto& b = ctx.builder(r);
    b.begin_phase();
    for (const auto& [peer, bytes] : links) {
      b.send(peer, bytes, tag);
      b.recv(peer, bytes, tag);
    }
    b.end_phase();
  }
}

goal::GenerativeBuilder generative_grid_builder(const WorkloadConfig& config) {
  goal::GenerativeBuilder builder(config.ranks, config.seed);
  const Rank block = effective_block(config);
  const Rank tail = config.ranks % block;
  const std::array<Rank, kMaxDims> dims = dims_create(block, 3);
  std::array<Rank, kMaxDims> tail_dims{};
  if (tail > 0) tail_dims = dims_create(tail, 3);
  builder.stencil_grid(block, std::span<const Rank>(dims.data(), 3),
                       std::span<const Rank>(tail_dims.data(), 3),
                       /*periodic=*/false);
  return builder;
}

std::vector<goal::GenerativeBuilder::HaloLink> generative_full_links_3d(
    std::int64_t face_bytes, std::int64_t edge_bytes,
    std::int64_t corner_bytes) {
  std::vector<goal::GenerativeBuilder::HaloLink> links;
  links.reserve(26);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        const int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
        if (nonzero == 0) continue;
        goal::GenerativeBuilder::HaloLink link{};
        link.offsets[0] = static_cast<std::int8_t>(dx);
        link.offsets[1] = static_cast<std::int8_t>(dy);
        link.offsets[2] = static_cast<std::int8_t>(dz);
        link.bytes = nonzero == 1   ? face_bytes
                     : nonzero == 2 ? edge_bytes
                                    : corner_bytes;
        links.push_back(link);
      }
    }
  }
  return links;
}

std::vector<goal::GenerativeBuilder::HaloLink> generative_face_links_3d(
    std::int64_t face_bytes) {
  std::vector<goal::GenerativeBuilder::HaloLink> links;
  links.reserve(6);
  for (std::size_t d = 0; d < 3; ++d) {
    for (const int dir : {1, -1}) {
      goal::GenerativeBuilder::HaloLink link{};
      link.offsets[d] = static_cast<std::int8_t>(dir);
      link.bytes = face_bytes;
      links.push_back(link);
    }
  }
  return links;
}

void generative_compute(goal::GenerativeBuilder& builder, TimeNs nominal,
                        double imbalance, double jitter) {
  CELOG_ASSERT_MSG(nominal >= 0, "compute time must be non-negative");
  CELOG_ASSERT_MSG(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  CELOG_ASSERT_MSG(imbalance >= 0.0 && imbalance < 1.0,
                   "imbalance must be in [0, 1)");
  // Additive hashed jitter in [0, 2 * jitter * nominal] centred by
  // lowering the base: mean nominal, spread +-jitter * nominal — the same
  // first two moments jittered_compute draws from its RNG stream.
  const auto jitter_ns =
      static_cast<TimeNs>(2.0 * jitter * static_cast<double>(nominal));
  const TimeNs base = nominal - jitter_ns / 2;
  const auto imb_permille =
      static_cast<std::int32_t>(imbalance * 1000.0 + 0.5);
  builder.calc(base, jitter_ns, imb_permille);
}

}  // namespace celog::workloads
