# Empty compiler generated dependencies file for celog_core.
# This may be replaced when dependencies are built.
