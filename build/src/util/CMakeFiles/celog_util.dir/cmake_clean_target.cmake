file(REMOVE_RECURSE
  "libcelog_util.a"
)
