// miniFE workload model (Table I).
//
// miniFE captures the key phases of an implicit unstructured finite-element
// code: a one-time assembly (matrix structure + boundary exchange), then a
// CG solve. Per CG iteration:
//   * SpMV halo exchange with the 6 face neighbors of the brick-shaped
//     partition (miniFE's matrix couples only across faces);
//   * SpMV + smoother compute;
//   * dot product -> 8-byte allreduce;
//   * axpy compute;
//   * second dot product -> 8-byte allreduce.
// Two syncs per ~120 ms iteration -> middle sensitivity band, close to HPCG
// (the codes solve the same class of problem).
#include "collectives/collectives.hpp"
#include "workloads/models.hpp"
#include "workloads/patterns.hpp"
#include "workloads/topology.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace celog::workloads {
namespace {

class MinifeWorkload final : public Workload {
 public:
  std::string name() const override { return "minife"; }
  std::string description() const override {
    return "miniFE implicit finite-element proxy (assembly, then CG with "
           "two dot-product allreduces per iteration)";
  }

  TimeNs sync_period() const override {
    return (kSpmvCompute + kAxpyCompute) / 2;
  }

  TimeNs iteration_time() const override {
    return kSpmvCompute + kAxpyCompute;
  }

  goal::TaskGraph build(const WorkloadConfig& config) const override {
    goal::TaskGraph graph(config.ranks);
    BuildContext ctx(graph, config.seed);
    const goal::Rank block = effective_block(config);
    const auto faces = [&](std::int64_t bytes) {
      return tile_blocks(config.ranks, block, [&](goal::Rank b) {
        return face_neighbors(CartGrid(b, 3, /*periodic=*/false), bytes);
      });
    };
    const NeighborLists spmv_halo = faces(14 * 1024);
    // Assembly exchanges shared-node contributions: larger, one-off.
    const NeighborLists assembly_halo = faces(48 * 1024);
    const std::vector<double> imbalance = ctx.persistent_imbalance(kImbalance);

    const auto scaled = [&](TimeNs t) {
      return static_cast<TimeNs>(static_cast<double>(t) *
                                 config.compute_scale);
    };

    // One-time assembly: generate + assemble the local stiffness matrix.
    compute_phase(ctx, scaled(kAssemblyCompute), imbalance, kJitter);
    halo_exchange(ctx, assembly_halo);
    compute_phase(ctx, scaled(kAssemblyCompute / 4), imbalance, kJitter);

    for (int iter = 0; iter < config.iterations; ++iter) {
      halo_exchange(ctx, spmv_halo);
      compute_phase(ctx, scaled(kSpmvCompute), imbalance, kJitter);
      collectives::allreduce(ctx.builders(), 8, ctx.tags());
      compute_phase(ctx, scaled(kAxpyCompute), imbalance, kJitter);
      collectives::allreduce(ctx.builders(), 8, ctx.tags());
    }
    graph.finalize();
    return graph;
  }

  bool has_generative() const override { return true; }

  std::optional<goal::GenerativeGraph> build_generative(
      const WorkloadConfig& config) const override {
    if (config.iterations < 1) return std::nullopt;
    goal::GenerativeBuilder b = generative_grid_builder(config);
    const auto spmv_links = generative_face_links_3d(14 * 1024);
    const auto assembly_links = generative_face_links_3d(48 * 1024);
    const auto scaled = [&](TimeNs t) {
      return static_cast<TimeNs>(static_cast<double>(t) *
                                 config.compute_scale);
    };
    // One-time assembly prologue, then the per-iteration CG body.
    generative_compute(b, scaled(kAssemblyCompute), kImbalance, kJitter);
    b.halo(assembly_links);
    generative_compute(b, scaled(kAssemblyCompute / 4), kImbalance, kJitter);
    b.begin_body();
    b.halo(spmv_links);
    generative_compute(b, scaled(kSpmvCompute), kImbalance, kJitter);
    b.allreduce(8);
    generative_compute(b, scaled(kAxpyCompute), kImbalance, kJitter);
    b.allreduce(8);
    return b.build(config.iterations);
  }

 private:
  // Weak-scaled implicit FE: a CG iteration over the per-rank brick is
  // ~1.6 s (memory-bound SpMV dominates), two dots split it.
  static constexpr TimeNs kAssemblyCompute = milliseconds(3000);
  static constexpr TimeNs kSpmvCompute = milliseconds(1100);
  static constexpr TimeNs kAxpyCompute = milliseconds(500);
  static constexpr double kJitter = 0.02;
  static constexpr double kImbalance = 0.03;
};

}  // namespace

std::shared_ptr<const Workload> make_minife() {
  return std::make_shared<MinifeWorkload>();
}

}  // namespace celog::workloads
