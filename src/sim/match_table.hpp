// celog/sim/match_table.hpp
//
// Message-matching stores for the engine.
//
// MPI matching semantics: a message (or posted recv) matches on the exact
// key (source rank, tag), FIFO among entries with equal keys. The seed
// engine implemented this as a linear std::find_if over one deque per rank
// — O(outstanding) per match, which turns workloads with deep nonblocking
// recv queues (miniFE/HPCG halo phases post hundreds of irecvs) into
// O(outstanding^2) runs.
//
// FifoMatchTable is the O(1)-amortized replacement: an open-addressing
// hash table from the packed (src, tag) key to an intrusive FIFO of
// pool-allocated nodes. Because matching is always an *exact*-key lookup
// (the engine models no wildcard receives), taking the head of the key's
// FIFO returns exactly the entry the linear scan would have found: the
// first-pushed entry with that key. Hash iteration order never influences
// a match, so determinism is preserved bit-for-bit; LinearMatchList is
// retained as the executable reference for the differential test
// (ctest -L engine) that proves it.
//
// Open addressing (linear probing, power-of-two capacity) rather than
// std::unordered_map: no node allocation per first-use key, and a lookup
// costs one probe — usually one cache line — instead of a bucket-array +
// chain-node pointer chase. That matters because the engine interleaves
// events across every rank, so each rank's table is cache-cold when
// touched. Slots are never erased (a drained FIFO keeps its slot for the
// next message generation with that key); the table grows by rehash at 50%
// load, against a bound of distinct keys per rank, so steady-state
// matching allocates nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "goal/task_graph.hpp"
#include "util/error.hpp"

namespace celog::sim::detail {

/// Packs a (source rank, tag) match key into one 64-bit hash-map key.
/// Ranks are non-negative, so the top bit is never set and kEmptySlot
/// below cannot collide with a real key.
inline std::uint64_t match_key(goal::Rank src, goal::Tag tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

/// Hash-bucketed FIFO matching: O(1) amortized push / try_pop per key.
/// Nodes live in a pooled vector with an intrusive free list, so
/// steady-state matching allocates nothing and drained buckets are reused
/// for the next (src, tag) generation without hash churn.
template <typename T>
class FifoMatchTable {
 public:
  // celint: hot-path begin -- steady-state matching recycles pooled nodes
  void push(std::uint64_t key, const T& value) {
    const std::uint32_t idx = alloc(value);
    Slot& slot = find_or_insert(key);
    if (slot.head == kNil) {
      slot.head = idx;
    } else {
      nodes_[slot.tail].next = idx;
    }
    slot.tail = idx;
    ++size_;
  }

  /// Pops the first-pushed entry with `key` into `out`; false if none.
  bool try_pop(std::uint64_t key, T& out) {
    if (size_ == 0) return false;
    Slot* slot = find(key);
    if (slot == nullptr || slot->head == kNil) return false;
    const std::uint32_t idx = slot->head;
    slot->head = nodes_[idx].next;
    if (slot->head == kNil) slot->tail = kNil;
    out = nodes_[idx].value;
    release(idx);
    --size_;
    return true;
  }
  // celint: hot-path end

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Empties the table while keeping the slot array and node capacity.
  /// Keys stay resident in their probe slots (slots are never erased), so
  /// a reused table re-finds the same graph's keys without re-inserting;
  /// hash layout cannot affect results (matching is exact-key FIFO). The
  /// head/tail re-nil loop runs only when entries were left behind — i.e.
  /// after an aborted run; normal completion drains every FIFO.
  void reset() {
    if (size_ != 0) {
      for (Slot& slot : slots_) {
        slot.head = kNil;
        slot.tail = kNil;
      }
      size_ = 0;
    }
    nodes_.clear();
    free_head_ = kNil;
  }

  /// Visits every live entry in unspecified order (cold paths only:
  /// deadlock diagnostics sort what they collect before printing).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key == kEmptySlot) continue;
      for (std::uint32_t i = slot.head; i != kNil; i = nodes_[i].next) {
        fn(nodes_[i].value);
      }
    }
  }

  /// Heap bytes held resident (slot array + node pool).
  std::size_t resident_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           nodes_.capacity() * sizeof(Node);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint64_t kEmptySlot = ~0ull;  // unreachable key

  struct Node {
    T value;
    std::uint32_t next = kNil;
  };
  struct Slot {
    std::uint64_t key = kEmptySlot;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// Fibonacci multiplicative hash: spreads the packed (src, tag) bits —
  /// which differ only in low positions for typical workloads — across the
  /// table without a division.
  static std::size_t mix(std::uint64_t key) {
    return static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ull);
  }

  Slot* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) >> shift_;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return &slot;
      if (slot.key == kEmptySlot) return nullptr;
    }
  }

  Slot& find_or_insert(std::uint64_t key) {
    if (used_ * 2 >= slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) >> shift_;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot;
      if (slot.key == kEmptySlot) {
        slot.key = key;
        ++used_;
        return slot;
      }
    }
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c /= 2) --shift_;
    const std::size_t mask = cap - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptySlot) continue;
      std::size_t i = mix(slot.key) >> shift_;
      while (slots_[i].key != kEmptySlot) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  // celint: hot-path begin -- node recycling; growth is amortized only
  std::uint32_t alloc(const T& value) {
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      free_head_ = nodes_[idx].next;
      nodes_[idx].value = value;
      nodes_[idx].next = kNil;
      return idx;
    }
    // celint: allow(hotpath-alloc) -- pool growth: amortized, recycled
    nodes_.push_back(Node{value, kNil});  // across runs via reset()
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void release(std::uint32_t idx) {
    nodes_[idx].next = free_head_;
    free_head_ = idx;
  }
  // celint: hot-path end

  std::vector<Slot> slots_;  // power-of-two capacity, linear probing
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t shift_ = 64;  // top-bits index shift for current capacity
  std::size_t used_ = 0;      // occupied slots (keys are never erased)
  std::size_t size_ = 0;
};

/// The seed engine's matcher, kept as the executable specification:
/// first-match linear scan over one FIFO deque. O(outstanding) per match.
template <typename T>
class LinearMatchList {
 public:
  void push(std::uint64_t key, const T& value) {
    entries_.push_back(Entry{key, value});
  }

  bool try_pop(std::uint64_t key, T& out) {
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.key == key; });
    if (it == entries_.end()) return false;
    out = it->value;
    entries_.erase(it);
    return true;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Empties the list (the deque's block storage is reused on refill).
  void reset() { entries_.clear(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.value);
  }

  /// Approximate resident bytes (deque block bookkeeping not counted).
  std::size_t resident_bytes() const {
    return entries_.size() * sizeof(Entry);
  }

 private:
  struct Entry {
    std::uint64_t key;
    T value;
  };

  std::deque<Entry> entries_;
};

}  // namespace celog::sim::detail
