// bench/ablation_fleet — predictive-maintenance campaigns over the fleet
// memory-health database (src/fleetdb/): what does acting on logged CE
// history buy, and what does it cost?
//
// Four policies drive identical fleets (same campaign seed, same
// fleet-persistent fault rows) through the same span of fleet time:
//
//   none        serve everything — anchors the frontier at maximum UE
//               exposure and zero capacity lost.
//   age         replace modules on a staggered service-life clock,
//               blind to error history (capacity-heavy).
//   threshold   mcelog-style: offline a row at 64 observed CEs, replace
//               a module once 3 of its rows are offlined.
//   cost_model  offline/replace iff UE-risk avoided beats capacity cost
//               (the RL-paper reward framing).
//
// Because fault rows persist across epochs (fleetdb::FleetEpochState),
// maintenance feeds back into the CE stream: offlined rows stop producing
// detours, replaced modules re-roll their fault rows. The table shows the
// per-policy outcome counters — all integers, bit-identical for any
// --jobs — and the frontier section plots UE-avoided against capacity
// lost in the cost model's common currency (page=1, dimm=8).
//
// The perf metric is fleet-years simulated per CPU-hour for the threshold
// campaign (graph build + 20 epochs x runs, the full campaign path); the
// committed floor in perf_floor.json fails the fleet-perf-smoke ctest on
// a >30% regression.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fleetdb/campaign.hpp"
#include "fleetdb/maintenance.hpp"
#include "fleetdb/memdb.hpp"
#include "util/table.hpp"
#include "wall_clock.hpp"

int main(int argc, char** argv) {
  using namespace celog;
  Cli cli(
      "ablation_fleet: maintenance-policy campaigns over the fleet "
      "memory-health DB (none vs age vs threshold vs cost-model)");
  cli.add_option("ranks", "32", "fleet nodes (one rank per node)");
  cli.add_option("epochs", "20",
                 "campaign epochs (each stands for half a fleet-year)");
  cli.add_option("runs", "2", "observation runs per epoch");
  cli.add_option("sim-s", "0.05", "target simulated seconds per run");
  cli.add_option("seed", "42", "campaign seed (fault placement + runs)");
  cli.add_option("mtbce-ms", "4",
                 "per-node mean time between CEs, in milliseconds "
                 "(accelerated aging: one run window stands for an epoch; "
                 "4 ms heats a ~50 ms window's rows over several epochs "
                 "instead of tripping every threshold in epoch one)");
  cli.add_option("jobs", "0",
                 "threads across an epoch's runs (0 = all hardware "
                 "threads; DB and table are identical for any value)");
  cli.add_option("json", "",
                 "append a perf-trajectory JSONL record to this file");
  cli.add_option("check-floor", "",
                 "flat JSON file of throughput floors; exit 1 if any "
                 "recorded metric falls >30% below its floor");
  cli.add_flag("smoke", "CI preset: ranks=16, runs=1, sim-s=0.02 "
               "(explicit flags still override)");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const bool smoke = cli.get_flag("smoke");
  const auto value_or = [&cli, smoke](const char* key, double smoke_dflt) {
    return (!smoke || cli.provided(key)) ? cli.get_double(key) : smoke_dflt;
  };
  fleetdb::CampaignConfig config;
  config.workload = "lammps-crack";
  config.ranks = static_cast<std::int32_t>(value_or("ranks", 16));
  config.runs_per_epoch = static_cast<int>(value_or("runs", 1));
  config.sim_target_s = value_or("sim-s", 0.02);
  config.campaign_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.noise.mtbce = from_seconds(cli.get_double("mtbce-ms") * 1e-3);
  config.jobs = static_cast<int>(cli.get_int("jobs"));
  const int epochs = static_cast<int>(cli.get_int("epochs"));

  bench::PerfJson perf(cli.get("json"), "ablation_fleet");
  const bench::WallTimer total_timer;
  std::printf("== Ablation: fleet maintenance campaigns ==\n");
  std::printf(
      "fleet: %d nodes, %d epochs x %s fleet time, %d run(s)/epoch, "
      "MTBCE %s/node (accelerated), seed %llu\n\n",
      config.ranks, epochs, format_duration(config.epoch_span).c_str(),
      config.runs_per_epoch, format_duration(config.noise.mtbce).c_str(),
      static_cast<unsigned long long>(config.campaign_seed));

  // The cost model's currency prices every policy's frontier point.
  const fleetdb::CostModelPolicy::Config currency;

  struct Row {
    std::string name;
    fleetdb::CampaignStats stats;
    fleetdb::MemDbSummary db;
    double fleet_years = 0.0;
    double wall_s = 0.0;
  };
  std::vector<Row> rows;
  const auto run_campaign = [&](const char* label,
                                fleetdb::MaintenancePolicy& policy) {
    const bench::WallTimer timer;
    fleetdb::CampaignRunner runner(config, policy);
    runner.run(epochs);
    Row row{label, runner.stats(), runner.db().summary(),
            runner.fleet_years(), timer.seconds()};
    rows.push_back(std::move(row));
  };

  {
    fleetdb::NullMaintenancePolicy none;
    run_campaign("none", none);
  }
  {
    fleetdb::AgeReplacePolicy age(3 * kYear);
    run_campaign("age", age);
  }
  {
    fleetdb::ThresholdMaintenancePolicy threshold;
    run_campaign("threshold", threshold);
  }
  {
    fleetdb::CostModelPolicy cost_model;
    run_campaign("cost_model", cost_model);
  }

  // Deterministic outcome table: every column is an integer fold of the
  // campaign DB, bit-identical for any --jobs value.
  TextTable table({"policy", "fleet-yrs", "CEs", "suppressed", "UE-exposed",
                   "UE-avoided", "pages off", "dimms repl", "capacity lost"});
  for (const Row& row : rows) {
    const double capacity_lost =
        static_cast<double>(row.stats.page_offline_epochs) *
            currency.page_cost +
        static_cast<double>(row.stats.dimms_replaced) * currency.dimm_cost;
    char years[32];
    std::snprintf(years, sizeof(years), "%.1f", row.fleet_years);
    char lost[32];
    std::snprintf(lost, sizeof(lost), "%.1f", capacity_lost);
    table.add_row({row.name, years, std::to_string(row.db.total_ces),
                   std::to_string(row.db.total_suppressed),
                   std::to_string(row.stats.ue_exposure_epochs),
                   std::to_string(row.stats.ue_avoided_epochs),
                   std::to_string(row.stats.pages_offlined),
                   std::to_string(row.stats.dimms_replaced), lost});
  }
  std::fputs(table.render().c_str(), stdout);

  // The frontier: UE-risk bought off (row-epochs) against capacity spent.
  // "none" pins one end; a good policy dominates toward the top-left.
  std::printf("\n-- UE-avoided vs capacity-lost frontier --\n");
  for (const Row& row : rows) {
    const double capacity_lost =
        static_cast<double>(row.stats.page_offline_epochs) *
            currency.page_cost +
        static_cast<double>(row.stats.dimms_replaced) * currency.dimm_cost;
    std::printf("  %-10s avoided %6llu row-epochs   exposed %6llu   cost %8.1f\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.stats.ue_avoided_epochs),
                static_cast<unsigned long long>(row.stats.ue_exposure_epochs),
                capacity_lost);
    perf.metric("fleet_" + row.name + ".ue_avoided_row_epochs",
                static_cast<double>(row.stats.ue_avoided_epochs));
    perf.metric("fleet_" + row.name + ".capacity_lost",
                capacity_lost);
  }

  // Perf: fleet-years per CPU-hour of the full campaign path (wall time
  // includes the graph build and baseline — the real cost of a campaign).
  std::printf("\n");
  for (const Row& row : rows) {
    const double cpu_h = row.wall_s / 3600.0;
    const double years_per_cpu_h =
        cpu_h > 0.0 ? row.fleet_years / cpu_h : 0.0;
    std::printf("  %-10s %6.2f s wall   %10.4g fleet-years/CPU-hour\n",
                row.name.c_str(), row.wall_s, years_per_cpu_h);
    perf.metric("fleet_" + row.name + ".fleet_years_per_cpu_hour",
                years_per_cpu_h);
  }
  perf.metric("total_wall_s", total_timer.seconds());

  const std::string floor_path = cli.get("check-floor");
  if (!floor_path.empty()) {
    // Only this bench's own metrics are checked; engine/serve floors in
    // the same file are skipped (not recorded here), mirroring
    // engine_microbench.
    std::FILE* f = std::fopen(floor_path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open floor file %s\n", floor_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    int failures = 0;
    std::size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
      const std::size_t end = text.find('"', pos + 1);
      if (end == std::string::npos) break;
      const std::string key = text.substr(pos + 1, end - pos - 1);
      pos = end + 1;
      while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
        ++pos;
      }
      if (pos >= text.size() || text[pos] != ':') continue;
      ++pos;
      double floor = 0.0;
      if (std::sscanf(text.c_str() + pos, "%lf", &floor) != 1) continue;
      const double measured = perf.lookup(key);
      if (measured < 0.0) continue;  // not one of this bench's metrics
      const bool ok = measured >= 0.7 * floor;
      std::printf("floor  %-46s %.4g vs floor %.4g  %s\n", key.c_str(),
                  measured, floor, ok ? "OK" : "FAIL (>30% regression)");
      if (!ok) ++failures;
    }
    if (failures > 0) return 1;
  }
  return 0;
}
