// celog/trace/trace_io.hpp
//
// Text serialization of task graphs in a GOAL-like format, plus the
// trace-extrapolation feature of LogGOPSim (§III-C: "a trace collected by
// running the application with p processes can be extrapolated to simulate
// performance of the application running with k*p processes").
//
// Format (line oriented, '#' comments):
//
//   celog-goal 1
//   ranks <p>
//   rank <r> ops <n> deps <m>
//   calc <duration_ns>
//   send <peer> <bytes> <tag>
//   recv <peer> <bytes> <tag>
//   ...                              (n op lines, index order)
//   dep <before_index> <after_index> (m dependency lines)
//   ...                              (next rank)
//
// Round-trip guarantee: write(read(s)) == s up to comments/whitespace, and
// read(write(g)) produces a graph with identical ops and edges.
#pragma once

#include <iosfwd>
#include <string>

#include "goal/task_graph.hpp"

namespace celog::trace {

/// Writes a finalized graph to `os`.
void write_goal(std::ostream& os, const goal::TaskGraph& graph);

/// Parses a graph from `is` and finalizes it.
/// Throws ParseError on malformed input, InvalidInputError on cyclic deps.
goal::TaskGraph read_goal(std::istream& is);

/// Convenience file wrappers. Throw ParseError when the file cannot be
/// opened.
void save_goal(const std::string& path, const goal::TaskGraph& graph);
goal::TaskGraph load_goal(const std::string& path);

/// Extrapolates a p-rank graph to factor*p ranks by block replication:
/// clone i (ranks [i*p, (i+1)*p)) repeats the original program with every
/// peer shifted into its own block. This reproduces LogGOPSim's
/// point-to-point approximation; collective patterns should be regenerated
/// at full scale (our workload models do exactly that) when exactness
/// matters — see DESIGN.md.
goal::TaskGraph extrapolate(const goal::TaskGraph& graph, int factor);

}  // namespace celog::trace
