// celog/telemetry/fleet.hpp
//
// Fleet-scale aggregation of per-run CE telemetry.
//
// The paper's subject is logging *at scale*: what matters operationally is
// the fleet distribution — how many DIMMs sit in the quiet bulk versus the
// heavy tail, how often buckets trip, how many pages get offlined. A
// FleetAggregator folds RunSummary snapshots (telemetry/collector.hpp)
// into util-histograms of CEs per DIMM, bucket trips per DIMM, and
// offlined rows per run, plus exact integer totals.
//
// Determinism: all aggregator state is integer (counters and histogram
// bin counts; histogram *inputs* are integers exactly representable as
// doubles), so merging partial aggregators is associative and
// commutative EXACTLY — aggregate()'s parallel chunked fold returns
// bit-identical results for every job count, not merely "close" (the
// float-reduce trap celint guards against). Derived means are computed
// from the integer totals at query time.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "telemetry/ce_record.hpp"
#include "telemetry/collector.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace celog::telemetry {

/// Histogram shapes for the fleet distributions. Ranges are [0, max);
/// values at or above max land in the histogram's explicit overflow
/// counter (util::Histogram never silently clips).
struct FleetConfig {
  std::size_t bins = 32;
  double max_ces_per_dimm = 4096.0;
  double max_trips_per_dimm = 64.0;
  double max_rows_per_run = 256.0;

  bool operator==(const FleetConfig&) const = default;
};

class FleetAggregator {
 public:
  explicit FleetAggregator(const FleetConfig& config = {});

  /// Streaming entry point: folds one run's summary into the fleet view.
  void add(const RunSummary& run);

  /// Merges a partial aggregator. Exact: add-then-merge in any grouping
  /// equals one serial add sequence. Both aggregators must share one
  /// FleetConfig; a mismatch throws celog::Error in every build — folding
  /// histograms binned under different configs would silently corrupt the
  /// fleet distributions.
  void merge(const FleetAggregator& other);

  /// Deterministic parallel fold over `runs`: contiguous chunks build
  /// partial aggregators on a util::ThreadPool, then the partials merge
  /// in chunk-index order. Bit-identical to a serial fold for every
  /// `jobs` value (0 = all hardware threads).
  static FleetAggregator aggregate(std::span<const RunSummary> runs,
                                   const FleetConfig& config, int jobs);

  std::uint64_t runs() const { return runs_; }
  std::uint64_t total_ces() const { return total_ces_; }
  std::uint64_t action_total(CeAction a) const {
    return action_totals_[static_cast<std::size_t>(a)];
  }
  std::uint64_t bucket_trips() const { return bucket_trips_; }
  std::uint64_t rows_offlined() const { return rows_offlined_; }
  TimeNs detour_total() const { return detour_total_; }
  std::uint64_t dimms_seen() const { return dimms_seen_; }
  std::uint64_t max_ces_in_run() const { return max_ces_in_run_; }

  /// Mean CEs per run, derived from exact totals (0 when empty).
  double mean_ces_per_run() const;

  const Histogram& ces_per_dimm() const { return ces_per_dimm_; }
  const Histogram& trips_per_dimm() const { return trips_per_dimm_; }
  const Histogram& offlined_rows_per_run() const {
    return offlined_rows_per_run_;
  }

  /// One-line JSON summary (integer fields only — byte-stable), used by
  /// the ablation bench's --json fleet record and the tests.
  std::string to_json() const;

 private:
  FleetConfig config_;
  std::uint64_t runs_ = 0;
  std::uint64_t total_ces_ = 0;
  std::array<std::uint64_t, kCeActionCount> action_totals_{};
  std::uint64_t bucket_trips_ = 0;
  std::uint64_t rows_offlined_ = 0;
  TimeNs detour_total_ = 0;
  std::uint64_t dimms_seen_ = 0;
  std::uint64_t max_ces_in_run_ = 0;
  Histogram ces_per_dimm_;
  Histogram trips_per_dimm_;
  Histogram offlined_rows_per_run_;
};

}  // namespace celog::telemetry
