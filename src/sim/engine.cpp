#include "sim/engine.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "goal/generative.hpp"
#include "sim/event_queue.hpp"
#include "sim/match_table.hpp"
#include "sim/run_context.hpp"
#include "util/error.hpp"

namespace celog::sim {
namespace {

using goal::GenerativeGraph;
using goal::Op;
using goal::OpIndex;
using goal::OpKind;
using goal::Rank;
using goal::Tag;

using detail::EventKind;
using detail::EventPayload;
using detail::EventPool;
using detail::EventQueue;
using detail::FifoMatchTable;
using detail::HeapEntry;
using detail::LinearMatchList;
using detail::match_key;
using detail::MsgKind;

/// A recv that has been posted but not yet matched.
struct PostedRecv {
  OpIndex op;
  Rank src;
  Tag tag;
  std::int64_t size;
  TimeNs post_time;
};

/// A message (eager data or RTS) that arrived before its recv was posted.
struct UnexpectedMsg {
  MsgKind kind;
  Rank src;
  Tag tag;
  std::int64_t size;
  TimeNs arrival;
  OpIndex sender_op;
};

/// CPU-noise policy for noise-free runs: the devirtualized fast path.
/// Semantically identical to RankNoise over a NullDetourSource (next_free
/// is the identity, occupy adds exactly `len`, nothing is ever stolen, and
/// NoProgressError can never fire without detours) but with no virtual
/// peek_arrival() per CPU interval and no per-rank source allocation.
struct PassthroughNoise {
  TimeNs next_free(TimeNs t) const { return t; }
  TimeNs occupy(TimeNs start, TimeNs len) const { return start + len; }
  TimeNs stolen_time() const { return 0; }
  std::uint64_t charged_detours() const { return 0; }
};

/// Per-rank simulation state, allocated only for *active* ranks (nonempty
/// program or at least one inbound message). NoisePolicy is either
/// noise::RankNoise (the general path) or PassthroughNoise (noise-free
/// fast path); Table is the matching store (FifoMatchTable or the
/// LinearMatchList reference).
template <typename NoisePolicy, template <class> class Table>
struct RankState {
  template <typename... NoiseArgs>
  explicit RankState(NoiseArgs&&... args)
      : noise(std::forward<NoiseArgs>(args)...) {}

  NoisePolicy noise;
  TimeNs cpu_free = 0;
  TimeNs nic_free = 0;
  TimeNs finish = 0;
  Table<PostedRecv> posted;
  Table<UnexpectedMsg> unexpected;
  // Remaining prerequisite count and latest-prerequisite-finish per op.
  std::vector<std::uint32_t> pending;
  std::vector<TimeNs> ready_time;
  // Completion flags, consulted only by deadlock diagnostics (to tell a
  // rendezvous send stuck waiting on CTS from one that completed).
  std::vector<std::uint8_t> done;

  /// Engine-owned heap bytes (noise-source internals not counted: they
  /// are O(1) per rank and model-specific).
  std::size_t resident_bytes() const {
    return pending.capacity() * sizeof(std::uint32_t) +
           ready_time.capacity() * sizeof(TimeNs) +
           done.capacity() * sizeof(std::uint8_t) + posted.resident_bytes() +
           unexpected.resident_bytes();
  }
};

/// rank -> active-slot sentinel for ranks with no state.
constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Graphs at or below this rank count get exact graph-derived per-shard
/// event reservations (and, in Debug builds, the no-reallocation assert).
/// Above it, up-front exact reservations would cost bound * 24 B * ranks —
/// gigabytes at 100K ranks for bounds that are worst cases, not peaks —
/// so shards start empty and grow amortized to their actual peak, which
/// for periodic patterns is orders of magnitude below the bound.
constexpr Rank kExactReserveRankCap = 16384;

/// The engine state a RunContext actually stores: everything a run mutates,
/// typed by the (noise-policy, match-table, graph) instantiation it was
/// built for. A context last used with a different instantiation fails the
/// engine's downcast and is simply rebuilt (see run_in_context below); a
/// context last used with a different graph is detected via `graph` and
/// rebuilt in place, releasing capacity the new graph does not need.
template <typename NoisePolicy, template <class> class Table, typename Graph>
struct EngineState final : detail::RunContextState {
  /// One entry per active rank, in ascending rank order.
  std::vector<RankState<NoisePolicy, Table>> states;
  /// Active slot -> rank.
  std::vector<Rank> active;
  /// Rank -> active slot, or kNoSlot.
  std::vector<std::uint32_t> slot_of;
  EventQueue queue;
  EventPool pool;
  /// Graph this state was built for (borrowed; identity is the rebind key).
  const Graph* graph = nullptr;
  Rank graph_ranks = 0;
  std::size_t total_ops = 0;

  std::size_t resident_bytes() const override {
    std::size_t bytes =
        states.capacity() * sizeof(RankState<NoisePolicy, Table>) +
        active.capacity() * sizeof(Rank) +
        slot_of.capacity() * sizeof(std::uint32_t) + queue.resident_bytes() +
        pool.resident_bytes();
    for (const auto& rs : states) bytes += rs.resident_bytes();
    return bytes;
  }
};

template <typename NoisePolicy, template <class> class Table, typename Graph>
class Run {
 public:
  /// Prepares `es` for one run: builds it on first use (or after a graph
  /// change), resets-and-reuses it otherwise. Either way the post-state is
  /// identical — empty queue/pool/tables, per-op pending counts from the
  /// graph, freshly (re)seeded noise sources — so the event replay, and
  /// therefore the SimResult, cannot depend on which path ran.
  Run(EngineState<NoisePolicy, Table, Graph>& es, const Graph& graph,
      const NetworkParams& params, const noise::NoiseModel& noise,
      std::uint64_t run_seed, TimeNs horizon,
      const OpCompletionCallback& on_complete, DetourSink* ce_sink)
      : graph_(graph),
        params_(params),
        on_complete_(on_complete),
        ce_sink_(ce_sink),
        states_(es.states),
        active_(es.active),
        slot_of_(es.slot_of),
        queue_(es.queue),
        pool_(es.pool) {
    if (es.graph == &graph_ && es.graph_ranks == graph_.ranks()) {
      reset_for_run(noise, run_seed, horizon);
    } else {
      build(es, noise, run_seed, horizon);
    }
    total_ops_ = es.total_ops;

    // Seed the initial ready events — after any reserve, so the
    // no-reallocation invariant covers them too. Rank-major op-order
    // seeding matches the seed engine's seq assignment bit-for-bit
    // (inactive ranks have no ops, so skipping them changes nothing).
    // celint: hot-path begin -- per-run seeding reuses reserved capacity
    for (std::size_t s = 0; s < active_.size(); ++s) {
      const Rank r = active_[s];
      const auto prog = graph_.program(r);
      RankState<NoisePolicy, Table>& rs = states_[s];
      for (OpIndex i = 0; i < prog.size(); ++i) {
        if (rs.pending[i] == 0) push_ready(r, i, 0);
      }
    }
    // celint: hot-path end
  }

  SimResult execute() {
    // celint: hot-path begin -- the event loop: zero allocation per event
    while (!queue_.empty()) {
      const HeapEntry top = queue_.pop();
      // Copy the payload out and recycle the slot before handling: handlers
      // push follow-up events that may legitimately reuse it.
      const EventPayload ev = pool_[top.payload];
      pool_.release(top.payload);
      ++result_.events_processed;
      switch (ev.kind) {
        case EventKind::kOpReady: handle_ready(top.time, ev); break;
        case EventKind::kMsgArrive: handle_message(top.time, ev); break;
      }
    }
    // celint: hot-path end
    if (completed_ops_ != total_ops_) throw_deadlock();

    // Per-rank finish times for ALL ranks; inactive ranks ran nothing and
    // finish at 0, exactly as when they carried (unused) state.
    result_.rank_finish.assign(static_cast<std::size_t>(graph_.ranks()), 0);
    for (std::size_t s = 0; s < active_.size(); ++s) {
      const RankState<NoisePolicy, Table>& rs = states_[s];
      result_.rank_finish[static_cast<std::size_t>(active_[s])] = rs.finish;
      result_.makespan = std::max(result_.makespan, rs.finish);
      result_.noise_stolen += rs.noise.stolen_time();
      result_.detours_charged += rs.noise.charged_detours();
    }
    return std::move(result_);
  }

 private:
  /// Per-rank bound on outstanding events. Every event lives in exactly
  /// one rank's shard (its ready ops plus inbound wire messages), and the
  /// shard of rank r holds at most
  ///   1 + sources(r)             (ready events seeded by the constructor)
  /// + sum max(0, out_deg-1)      (completing an op on r may release up to
  ///                               out_degree successors of r while
  ///                               consuming one popped event of r)
  /// + #sends targeting r         (each send keeps at most one message
  ///                               bound for the receiver — eager data,
  ///                               RTS, or RndvData — in flight at a time)
  /// + #rendezvous sends on r     (each may have one CTS in flight back
  ///                               toward r)
  /// so reserving that bound per shard makes mid-run reallocation
  /// impossible (debug builds assert it in EventQueue::push when the
  /// exact reservation was made — see kExactReserveRankCap).
  ///
  /// First-use (or post-graph-change) path: determine the active ranks,
  /// build their state, and reserve the queue when the graph is small
  /// enough for exact bounds to be cheap.
  void build(EngineState<NoisePolicy, Table, Graph>& es,
             const noise::NoiseModel& noise, std::uint64_t run_seed,
             TimeNs horizon) {
    const Rank ranks = graph_.ranks();
    es.graph_ranks = ranks;
    es.total_ops = graph_.total_ops();

    // Pass 1: per-rank event bounds and activity. A rank is active when it
    // has ops of its own or receives at least one message (a message to a
    // rank with no recv still needs that rank's unexpected table for the
    // deadlock diagnostics).
    active_.clear();
    slot_of_.assign(static_cast<std::size_t>(ranks), kNoSlot);
    std::vector<std::size_t> bound;
    std::size_t uniform_bound = 0;
    if constexpr (std::is_same_v<Graph, GenerativeGraph>) {
      // Uniform pattern: every rank runs the same template, so every rank
      // is active and one bound — computed from the shared template, not
      // by scanning ranks() programs — serves all shards. Every slot's
      // destination map is injective (torus offsets, dissemination and
      // recursive-doubling pairings, binomial tree edges), so each send
      // slot contributes at most one inbound message per rank; each
      // rendezvous-sized send slot can additionally have one CTS in
      // flight back toward the sender.
      active_.resize(static_cast<std::size_t>(ranks));
      for (Rank r = 0; r < ranks; ++r) {
        active_[static_cast<std::size_t>(r)] = r;
        slot_of_[static_cast<std::size_t>(r)] =
            static_cast<std::uint32_t>(r);
      }
      const auto send_bytes = graph_.send_slot_bytes();
      std::size_t rendezvous = 0;
      for (const std::int64_t bytes : send_bytes) {
        if (!params_.eager(bytes)) ++rendezvous;
      }
      uniform_bound = 1 + graph_.sources_per_rank() +
                      graph_.surplus_successors_per_rank() +
                      send_bytes.size() + rendezvous;
    } else {
      bound.assign(static_cast<std::size_t>(ranks), 1);
      std::vector<std::uint8_t> active_flag(static_cast<std::size_t>(ranks),
                                            0);
      for (Rank r = 0; r < ranks; ++r) {
        const auto prog = graph_.program(r);
        if (prog.size() > 0) active_flag[static_cast<std::size_t>(r)] = 1;
        std::size_t& b = bound[static_cast<std::size_t>(r)];
        for (OpIndex i = 0; i < prog.size(); ++i) {
          if (prog.in_degree(i) == 0) ++b;
          const std::size_t out = prog.successors(i).size();
          if (out > 1) b += out - 1;
          const Op op = prog.op(i);
          if (op.kind == OpKind::kSend) {
            ++bound[static_cast<std::size_t>(op.peer)];
            active_flag[static_cast<std::size_t>(op.peer)] = 1;
            if (!params_.eager(op.size_or_duration)) ++b;
          }
        }
      }
      for (Rank r = 0; r < ranks; ++r) {
        if (active_flag[static_cast<std::size_t>(r)] != 0) {
          slot_of_[static_cast<std::size_t>(r)] =
              static_cast<std::uint32_t>(active_.size());
          active_.push_back(r);
        }
      }
    }

    // Pass 2: build per-active-rank state. Rebinding from a bigger graph
    // releases the surplus capacity instead of pinning it.
    states_.clear();
    if (states_.capacity() > active_.size()) {
      // Swap-with-empty rather than shrink_to_fit: releases the block
      // without copying elements (RankState is not copyable in spirit —
      // its greedy forwarding ctor would hijack the copy).
      std::vector<RankState<NoisePolicy, Table>>().swap(states_);
    }
    states_.reserve(active_.size());
    queue_.init(static_cast<Rank>(active_.size()));
    pool_.release_capacity();

    const bool exact = ranks <= kExactReserveRankCap;
    std::size_t total_bound = 0;
    for (std::size_t s = 0; s < active_.size(); ++s) {
      const Rank r = active_[s];
      if constexpr (std::is_same_v<NoisePolicy, noise::RankNoise>) {
        states_.emplace_back(noise.make_source(r, run_seed), horizon);
        states_.back().noise.set_sink(ce_sink_, r);
      } else {
        static_cast<void>(noise);
        static_cast<void>(run_seed);
        static_cast<void>(horizon);
        states_.emplace_back();
      }
      const auto prog = graph_.program(r);
      RankState<NoisePolicy, Table>& rs = states_.back();
      rs.pending.resize(prog.size());
      const auto indeg = prog.in_degrees();
      std::copy(indeg.begin(), indeg.end(), rs.pending.begin());
      rs.ready_time.assign(prog.size(), 0);
      rs.done.assign(prog.size(), 0);
      if (exact) {
        const std::size_t b =
            bound.empty() ? uniform_bound : bound[static_cast<std::size_t>(r)];
        queue_.reserve_rank(static_cast<Rank>(s), b);
        total_bound += b;
      }
    }
    if (exact) pool_.reserve(total_bound);
    es.graph = &graph_;
  }

  /// Reuse path: restore the build() post-state without touching capacity.
  /// Queue/pool/tables empty themselves (clearing anything an aborted run —
  /// NoProgressError — left behind), per-op bookkeeping is refilled from
  /// the graph (one bulk copy per rank from the program's in-degree slice),
  /// and each rank's noise source is reseeded in place to the exact stream
  /// a fresh make_source would produce — falling back to a fresh source
  /// when the model declines (e.g. the context was last run under a
  /// different noise model). The graph-derived queue bounds carry over
  /// unchanged: they depend only on the graph and the eager threshold,
  /// both fixed for this Simulator.
  // celint: hot-path begin -- run reuse + event handlers: reserved capacity only
  void reset_for_run(const noise::NoiseModel& noise, std::uint64_t run_seed,
                     TimeNs horizon) {
    queue_.reset();
    pool_.reset();
    for (std::size_t s = 0; s < active_.size(); ++s) {
      const Rank r = active_[s];
      const auto prog = graph_.program(r);
      RankState<NoisePolicy, Table>& rs = states_[s];
      if constexpr (std::is_same_v<NoisePolicy, noise::RankNoise>) {
        // reset() detaches any previous run's sink; attach this run's (or
        // nullptr) after it, so a reused context can never call into a sink
        // that died with an earlier run.
        rs.noise.reset(horizon);
        rs.noise.set_sink(ce_sink_, r);
        if (!noise.reseed_source(rs.noise.source(), r, run_seed)) {
          rs.noise.replace_source(noise.make_source(r, run_seed));
        }
      } else {
        static_cast<void>(noise);
        static_cast<void>(run_seed);
        static_cast<void>(horizon);
      }
      rs.cpu_free = 0;
      rs.nic_free = 0;
      rs.finish = 0;
      rs.posted.reset();
      rs.unexpected.reset();
      const auto indeg = prog.in_degrees();
      std::copy(indeg.begin(), indeg.end(), rs.pending.begin());
      std::fill(rs.ready_time.begin(), rs.ready_time.end(), 0);
      std::fill(rs.done.begin(), rs.done.end(), 0);
    }
  }

  RankState<NoisePolicy, Table>& state(Rank r) {
    return states_[slot_of_[static_cast<std::size_t>(r)]];
  }

  void push_ready(Rank rank, OpIndex op, TimeNs time) {
    const std::uint32_t slot = pool_.alloc();
    EventPayload& ev = pool_[slot];
    ev.kind = EventKind::kOpReady;
    ev.rank = rank;
    ev.op = op;
    queue_.push(shard_of(rank), HeapEntry{time, seq_++, slot});
  }

  void push_message(TimeNs time, Rank dest, MsgKind kind, Rank src, Tag tag,
                    std::int64_t size, OpIndex sender_op, OpIndex recv_op) {
    const std::uint32_t slot = pool_.alloc();
    EventPayload& ev = pool_[slot];
    ev.kind = EventKind::kMsgArrive;
    ev.rank = dest;
    ev.msg_kind = kind;
    ev.src = src;
    ev.tag = tag;
    ev.size = size;
    ev.sender_op = sender_op;
    ev.recv_op = recv_op;
    queue_.push(shard_of(dest), HeapEntry{time, seq_++, slot});
  }

  /// Queue shards are per *active* rank; any rank that can host an event
  /// (own ops or inbound messages) is active by construction.
  Rank shard_of(Rank rank) const {
    return static_cast<Rank>(slot_of_[static_cast<std::size_t>(rank)]);
  }

  /// Charges `len` ns of CPU on `rank`, starting no earlier than `earliest`
  /// and no earlier than the CPU becomes free; detours stretch the interval.
  TimeNs charge_cpu(Rank rank, TimeNs earliest, TimeNs len) {
    RankState<NoisePolicy, Table>& rs = state(rank);
    const TimeNs start = rs.noise.next_free(std::max(earliest, rs.cpu_free));
    const TimeNs end = rs.noise.occupy(start, len);
    rs.cpu_free = end;
    return end;
  }

  /// Injects a wire message: respects the NIC gap g (+ G per byte for the
  /// payload) and returns the arrival time at the destination.
  TimeNs inject(Rank rank, TimeNs earliest, std::int64_t payload_bytes) {
    RankState<NoisePolicy, Table>& rs = state(rank);
    const TimeNs wire = params_.wire_time(payload_bytes);
    const TimeNs start = std::max(earliest, rs.nic_free);
    rs.nic_free = start + params_.g + wire;
    return start + params_.L + wire;
  }

  /// Marks op (rank, index) complete at `time`: records the rank finish time
  /// and releases dependent ops.
  void complete_op(Rank rank, OpIndex op, TimeNs time) {
    RankState<NoisePolicy, Table>& rs = state(rank);
    rs.finish = std::max(rs.finish, time);
    rs.done[op] = 1;
    ++completed_ops_;
    if (on_complete_) on_complete_(rank, op, time);
    const auto prog = graph_.program(rank);
    for (const OpIndex succ : prog.successors(op)) {
      rs.ready_time[succ] = std::max(rs.ready_time[succ], time);
      CELOG_ASSERT(rs.pending[succ] > 0);
      if (--rs.pending[succ] == 0) push_ready(rank, succ, rs.ready_time[succ]);
    }
  }

  void handle_ready(TimeNs time, const EventPayload& ev) {
    const Op op = graph_.program(ev.rank).op(ev.op);
    switch (op.kind) {
      case OpKind::kCalc: {
        const TimeNs end = charge_cpu(ev.rank, time, op.size_or_duration);
        complete_op(ev.rank, ev.op, end);
        break;
      }
      case OpKind::kSend: start_send(time, ev, op); break;
      case OpKind::kRecv: post_recv(time, ev, op); break;
    }
  }

  void start_send(TimeNs time, const EventPayload& ev, const Op& op) {
    const std::int64_t size = op.size_or_duration;
    if (params_.eager(size)) {
      const TimeNs cpu_end =
          charge_cpu(ev.rank, time, params_.o + params_.cpu_byte_time(size));
      const TimeNs arrival = inject(ev.rank, cpu_end, size);
      push_message(arrival, op.peer, MsgKind::kEagerData, ev.rank, op.tag,
                   size, ev.op, 0);
      // Eager sends are fire-and-forget: local completion once the CPU has
      // handed the message to the NIC.
      complete_op(ev.rank, ev.op, cpu_end);
    } else {
      // Rendezvous: ship a ready-to-send control message; the send op stays
      // open until the CTS returns and the data leaves (see handle_message).
      const TimeNs cpu_end = charge_cpu(ev.rank, time, params_.o);
      const TimeNs arrival = inject(ev.rank, cpu_end, 0);
      push_message(arrival, op.peer, MsgKind::kRts, ev.rank, op.tag, size,
                   ev.op, 0);
      ++result_.control_messages;
    }
  }

  void post_recv(TimeNs time, const EventPayload& ev, const Op& op) {
    RankState<NoisePolicy, Table>& rs = state(ev.rank);
    // Look for an already-arrived message matching (src, tag), FIFO.
    const std::uint64_t key = match_key(op.peer, op.tag);
    UnexpectedMsg msg;
    if (!rs.unexpected.try_pop(key, msg)) {
      rs.posted.push(key, PostedRecv{ev.op, op.peer, op.tag,
                                     op.size_or_duration, time});
      return;
    }
    CELOG_ASSERT_MSG(msg.size == op.size_or_duration,
                     "matched message size differs from recv size");
    if (msg.kind == MsgKind::kEagerData) {
      finish_recv(ev.rank, ev.op, std::max(time, msg.arrival), msg.size);
    } else {
      send_cts(ev.rank, std::max(time, msg.arrival), msg, ev.op);
    }
  }

  /// Charges the receive overhead and completes the recv op.
  void finish_recv(Rank rank, OpIndex recv_op, TimeNs earliest,
                   std::int64_t size) {
    const TimeNs end =
        charge_cpu(rank, earliest, params_.o + params_.cpu_byte_time(size));
    complete_op(rank, recv_op, end);
    ++result_.data_messages;
  }

  /// Receiver side of the rendezvous handshake: clear-to-send back to the
  /// sender, carrying which send/recv pair matched.
  void send_cts(Rank rank, TimeNs earliest, const UnexpectedMsg& rts,
                OpIndex recv_op) {
    const TimeNs cpu_end = charge_cpu(rank, earliest, params_.o);
    const TimeNs arrival = inject(rank, cpu_end, 0);
    push_message(arrival, rts.src, MsgKind::kCts, rank, rts.tag, rts.size,
                 rts.sender_op, recv_op);
    ++result_.control_messages;
  }

  void handle_message(TimeNs time, const EventPayload& ev) {
    switch (ev.msg_kind) {
      case MsgKind::kEagerData:
      case MsgKind::kRts: {
        RankState<NoisePolicy, Table>& rs = state(ev.rank);
        const std::uint64_t key = match_key(ev.src, ev.tag);
        PostedRecv recv;
        if (!rs.posted.try_pop(key, recv)) {
          rs.unexpected.push(key, UnexpectedMsg{ev.msg_kind, ev.src, ev.tag,
                                                ev.size, time, ev.sender_op});
          return;
        }
        CELOG_ASSERT_MSG(recv.size == ev.size,
                         "matched message size differs from recv size");
        if (ev.msg_kind == MsgKind::kEagerData) {
          finish_recv(ev.rank, recv.op, time, ev.size);
        } else {
          send_cts(ev.rank, std::max(time, recv.post_time),
                   UnexpectedMsg{MsgKind::kRts, ev.src, ev.tag, ev.size, time,
                                 ev.sender_op},
                   recv.op);
        }
        break;
      }
      case MsgKind::kCts: {
        // Back at the sender: push the payload and complete the send op.
        const Op send_op = graph_.program(ev.rank).op(ev.sender_op);
        const std::int64_t size = send_op.size_or_duration;
        const TimeNs cpu_end =
            charge_cpu(ev.rank, time, params_.o + params_.cpu_byte_time(size));
        const TimeNs arrival = inject(ev.rank, cpu_end, size);
        // ev.src is the receiver that issued the CTS.
        push_message(arrival, ev.src, MsgKind::kRndvData, ev.rank, ev.tag,
                     size, ev.sender_op, ev.recv_op);
        complete_op(ev.rank, ev.sender_op, cpu_end);
        break;
      }
      case MsgKind::kRndvData: {
        finish_recv(ev.rank, ev.recv_op, time, ev.size);
        break;
      }
    }
  }
  // celint: hot-path end

  [[noreturn]] void throw_deadlock() {
    // Collect every category of stuck communication, sorted so the message
    // is deterministic regardless of hash iteration order:
    //  * posted recvs that never matched a message,
    //  * unexpected messages (eager data / RTS) that never matched a recv,
    //  * rendezvous sends that shipped an RTS but never saw the CTS.
    struct Stuck {
      Rank rank;
      OpIndex op;
      Rank peer;
      Tag tag;
    };
    std::vector<Stuck> recvs, strays, sends;
    for (std::size_t s = 0; s < active_.size(); ++s) {
      const Rank r = active_[s];
      const RankState<NoisePolicy, Table>& rs = states_[s];
      rs.posted.for_each([&](const PostedRecv& p) {
        recvs.push_back(Stuck{r, p.op, p.src, p.tag});
      });
      rs.unexpected.for_each([&](const UnexpectedMsg& m) {
        strays.push_back(Stuck{r, m.sender_op, m.src, m.tag});
      });
      const auto prog = graph_.program(r);
      for (OpIndex i = 0; i < prog.size(); ++i) {
        const Op op = prog.op(i);
        if (op.kind == OpKind::kSend && !params_.eager(op.size_or_duration) &&
            rs.pending[i] == 0 && !rs.done[i]) {
          sends.push_back(Stuck{r, i, op.peer, op.tag});
        }
      }
    }
    const auto by_position = [](const Stuck& a, const Stuck& b) {
      return std::tie(a.rank, a.op, a.peer, a.tag) <
             std::tie(b.rank, b.op, b.peer, b.tag);
    };
    std::sort(recvs.begin(), recvs.end(), by_position);
    std::sort(strays.begin(), strays.end(), by_position);
    std::sort(sends.begin(), sends.end(), by_position);

    constexpr std::size_t kMaxListed = 5;
    std::ostringstream msg;
    msg << "simulation deadlock: " << (total_ops_ - completed_ops_) << " of "
        << total_ops_ << " ops never completed;";
    for (std::size_t i = 0; i < recvs.size() && i < kMaxListed; ++i) {
      const Stuck& s = recvs[i];
      msg << " [rank " << s.rank << " recv op " << s.op << " from " << s.peer
          << " tag " << s.tag << " unmatched]";
    }
    for (std::size_t i = 0; i < strays.size() && i < kMaxListed; ++i) {
      const Stuck& s = strays[i];
      msg << " [rank " << s.rank << " unexpected message from " << s.peer
          << " (send op " << s.op << ") tag " << s.tag << " never received]";
    }
    for (std::size_t i = 0; i < sends.size() && i < kMaxListed; ++i) {
      const Stuck& s = sends[i];
      msg << " [rank " << s.rank << " rendezvous send op " << s.op << " to "
          << s.peer << " tag " << s.tag << " waiting on CTS]";
    }
    throw DeadlockError(msg.str());
  }

  const Graph& graph_;
  const NetworkParams& params_;
  const OpCompletionCallback& on_complete_;
  DetourSink* ce_sink_;
  // Context-owned storage (borrowed for the duration of this run)...
  std::vector<RankState<NoisePolicy, Table>>& states_;
  std::vector<Rank>& active_;
  std::vector<std::uint32_t>& slot_of_;
  EventQueue& queue_;
  EventPool& pool_;
  // ...and per-run locals.
  std::uint64_t seq_ = 0;
  std::size_t total_ops_ = 0;
  std::size_t completed_ops_ = 0;
  SimResult result_;
};

/// Dispatch target for one (noise-policy, match-table, graph)
/// instantiation: downcasts the context's state, adopting fresh state when
/// the context is empty or was last used with a different instantiation
/// (matcher change, baseline <-> noisy alternation, materialized <->
/// generative graph, or a context from another engine).
template <typename NoisePolicy, template <class> class Table, typename Graph>
SimResult run_in_context(RunContext& ctx, const Graph& graph,
                         const NetworkParams& params,
                         const noise::NoiseModel& noise,
                         std::uint64_t run_seed, TimeNs horizon,
                         const OpCompletionCallback& on_complete,
                         DetourSink* ce_sink) {
  auto* state =
      dynamic_cast<EngineState<NoisePolicy, Table, Graph>*>(ctx.state());
  if (state == nullptr) {
    auto fresh = std::make_unique<EngineState<NoisePolicy, Table, Graph>>();
    state = fresh.get();
    ctx.adopt(std::move(fresh));
  }
  return Run<NoisePolicy, Table, Graph>(*state, graph, params, noise,
                                        run_seed, horizon, on_complete,
                                        ce_sink)
      .execute();
}

/// Matcher x noise-policy dispatch for one graph representation.
template <typename Graph>
SimResult dispatch_run(const Graph& graph, MatcherKind matcher,
                       RunContext& ctx, const NetworkParams& params,
                       const noise::NoiseModel& noise, std::uint64_t run_seed,
                       TimeNs horizon, const OpCompletionCallback& on_complete,
                       DetourSink* ce_sink) {
  // NoNoiseModel runs take the devirtualized fast path: identical results
  // (RankNoise over a NullDetourSource is the identity on CPU intervals),
  // none of the per-interval virtual dispatch. A sink is irrelevant on it:
  // a noise-free run consumes no detours, so there is nothing to observe.
  const bool noise_free =
      dynamic_cast<const noise::NoNoiseModel*>(&noise) != nullptr;
  if (matcher == MatcherKind::kBucketed) {
    if (noise_free) {
      return run_in_context<PassthroughNoise, FifoMatchTable, Graph>(
          ctx, graph, params, noise, run_seed, horizon, on_complete, ce_sink);
    }
    return run_in_context<noise::RankNoise, FifoMatchTable, Graph>(
        ctx, graph, params, noise, run_seed, horizon, on_complete, ce_sink);
  }
  if (noise_free) {
    return run_in_context<PassthroughNoise, LinearMatchList, Graph>(
        ctx, graph, params, noise, run_seed, horizon, on_complete, ce_sink);
  }
  return run_in_context<noise::RankNoise, LinearMatchList, Graph>(
      ctx, graph, params, noise, run_seed, horizon, on_complete, ce_sink);
}

}  // namespace

double slowdown_percent(const SimResult& baseline, const SimResult& noisy) {
  // A throw, not an assert: a zero baseline makespan is a recoverable input
  // error (an empty graph fed to an experiment driver), and an assert-free
  // build returning (x - 0) / 0 would inject inf/NaN into every mean
  // downstream. Throwing keeps the contract in ALL build types.
  if (baseline.makespan <= 0) {
    throw Error("slowdown_percent: baseline makespan must be > 0 (got " +
                std::to_string(baseline.makespan) + ")");
  }
  const double base = static_cast<double>(baseline.makespan);
  const double with = static_cast<double>(noisy.makespan);
  return (with - base) / base * 100.0;
}

Simulator::Simulator(const goal::TaskGraph& graph, NetworkParams params)
    : graph_(&graph), params_(params) {
  CELOG_ASSERT_MSG(graph.finalized(),
                   "task graph must be finalized before simulation");
  params_.validate();
}

Simulator::Simulator(const goal::GenerativeGraph& graph, NetworkParams params)
    : generative_(&graph), params_(params) {
  params_.validate();
}

SimResult Simulator::run(const noise::NoiseModel& noise,
                         std::uint64_t run_seed, TimeNs horizon,
                         const OpCompletionCallback& on_complete,
                         DetourSink* ce_sink) const {
  RunContext ctx;
  return run(noise, run_seed, ctx, horizon, on_complete, ce_sink);
}

SimResult Simulator::run(const noise::NoiseModel& noise,
                         std::uint64_t run_seed, RunContext& ctx,
                         TimeNs horizon,
                         const OpCompletionCallback& on_complete,
                         DetourSink* ce_sink) const {
  const RunContext::ExclusiveRun guard(ctx);
  if (generative_ != nullptr) {
    return dispatch_run(*generative_, matcher_, ctx, params_, noise, run_seed,
                        horizon, on_complete, ce_sink);
  }
  return dispatch_run(*graph_, matcher_, ctx, params_, noise, run_seed,
                      horizon, on_complete, ce_sink);
}

SimResult Simulator::run_baseline() const {
  return run(noise::NoNoiseModel{}, 0);
}

SimResult Simulator::run_baseline(RunContext& ctx) const {
  return run(noise::NoNoiseModel{}, 0, ctx);
}

}  // namespace celog::sim
